package protocol

import (
	"bytes"
	"sort"
	"testing"

	"robustset/internal/points"
	"robustset/internal/ranges"
	"robustset/internal/transport"
)

func TestRangedHappyPath(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RangedConfig{Universe: testU, Seed: 7}
	runPair(t,
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, rounds, err := RunRangedBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("ranged sync did not converge to S_A")
			}
			if rounds < 1 {
				t.Errorf("rounds = %d", rounds)
			}
			return nil
		})
}

func TestRangedNoDifference(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RangedConfig{Universe: testU, Seed: 13}
	runPair(t,
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, rounds, err := RunRangedBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("identical sets changed under ranged sync")
			}
			// The root fingerprints match, so a single probe settles it.
			if rounds != 1 {
				t.Errorf("identical sets took %d rounds, want 1", rounds)
			}
			return nil
		})
}

func TestRangedEmptySides(t *testing.T) {
	alice := []points.Point{{1, 2}, {3, 4}, {5, 6}}
	cfg := RangedConfig{Universe: testU, Seed: 3}
	runPair(t,
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, alice) },
		func(tr transport.Transport) error {
			got, _, err := RunRangedBob(bg, tr, cfg, nil)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, alice) {
				t.Error("empty bob did not adopt alice's set")
			}
			return nil
		})
	runPair(t,
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, nil) },
		func(tr transport.Transport) error {
			got, _, err := RunRangedBob(bg, tr, cfg, alice)
			if err != nil {
				return err
			}
			if len(got) != 0 {
				t.Errorf("bob kept %d points alice does not hold", len(got))
			}
			return nil
		})
}

// TestRangedDuplicateMultiset: occurrence-indexed keys give the ranged
// path exact multiset semantics.
func TestRangedDuplicateMultiset(t *testing.T) {
	base := points.Point{17, 23}
	var bob []points.Point
	for i := 0; i < 3; i++ {
		bob = append(bob, base.Clone())
	}
	alice := points.Clone(bob)
	alice = append(alice, base.Clone(), base.Clone()) // two extra occurrences

	cfg := RangedConfig{Universe: testU, Seed: 21}
	runPair(t,
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, alice) },
		func(tr transport.Transport) error {
			got, _, err := RunRangedBob(bg, tr, cfg, bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, alice) {
				t.Errorf("got %d points, want %d identical copies", len(got), len(alice))
			}
			return nil
		})

	// And the converse direction: bob holds extra occurrences to drop.
	runPair(t,
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, bob) },
		func(tr transport.Transport) error {
			got, _, err := RunRangedBob(bg, tr, cfg, alice)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, bob) {
				t.Errorf("got %d points, want %d", len(got), len(bob))
			}
			return nil
		})
}

// TestRangedSerialMatchesBatched: the Serial knob changes only latency
// shape, never the outcome, and must cost strictly more round trips on a
// spread-out difference.
func TestRangedSerialMatchesBatched(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 2000, 40)
	if err != nil {
		t.Fatal(err)
	}
	run := func(serial bool) int {
		cfg := RangedConfig{Universe: testU, Seed: 5, Serial: serial}
		var rounds int
		runPair(t,
			func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, inst.alice) },
			func(tr transport.Transport) error {
				got, r, err := RunRangedBob(bg, tr, cfg, inst.bob)
				if err != nil {
					return err
				}
				if !points.EqualMultisets(got, inst.alice) {
					t.Error("ranged sync diverged")
				}
				rounds = r
				return nil
			})
		return rounds
	}
	batched, serial := run(false), run(true)
	if serial <= batched {
		t.Errorf("serial rounds %d not above batched %d on a 40-point diff", serial, batched)
	}
}

// TestRangedScoped reconciles the key space as disjoint partitions, the
// per-stream unit of mux-pipelined sync, and checks the merged diff
// matches a whole-space run.
func TestRangedScoped(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 1200, 24)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RangedConfig{Universe: testU, Seed: 11}
	tree, err := BuildRangeTree(cfg, inst.bob)
	if err != nil {
		t.Fatal(err)
	}
	bounds := tree.PartitionBounds(4)
	var add, rem [][]byte
	lo := []byte(nil)
	for _, hi := range append(bounds, ranges.TopBound(tree.KeyLen())) {
		scopeLo, scopeHi := lo, hi
		runPair(t,
			func(tr transport.Transport) error { return RunRangedAlice(bg, tr, cfg, inst.alice) },
			func(tr transport.Transport) error {
				a, r, _, err := RunRangedBobScoped(bg, tr, cfg, tree, scopeLo, scopeHi)
				if err != nil {
					return err
				}
				add = append(add, a...)
				rem = append(rem, r...)
				return nil
			})
		lo = hi
	}
	got, err := ApplyRangedDiff(cfg.Universe, inst.bob, add, rem)
	if err != nil {
		t.Fatal(err)
	}
	if !points.EqualMultisets(got, inst.alice) {
		t.Error("merged scoped diffs did not reconstruct S_A")
	}
}

func TestRangedConfigValidate(t *testing.T) {
	base := RangedConfig{Universe: testU, Seed: 1}
	if err := base.filled().validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for _, bad := range []RangedConfig{
		{Universe: testU, Branch: 1, ItemLimit: 8},
		{Universe: testU, Branch: MaxRangedBranch + 1, ItemLimit: 8},
		{Universe: testU, Branch: 4, ItemLimit: MaxRangedItemLimit + 1},
		{Universe: points.Universe{Dim: 40, Delta: 4}, Branch: 4, ItemLimit: 8},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestRangedParserRejections(t *testing.T) {
	const keyLen = 8
	probes := []rangeProbe{{lo: nil, hi: ranges.TopBound(keyLen), agg: ranges.Agg{Count: 3, Fp: 9}}}
	frame := appendRangeProbes(nil, probes, keyLen)
	if _, err := parseRangeProbes(frame, keyLen); err != nil {
		t.Fatalf("valid probe frame rejected: %v", err)
	}
	for name, body := range map[string][]byte{
		"empty":          {},
		"zero probes":    appendRangeProbes(nil, nil, keyLen),
		"trailing":       append(append([]byte(nil), frame...), 0),
		"truncated":      frame[:len(frame)-3],
		"overlong bound": {1, keyLen + 1, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"empty range":    appendRangeProbes(nil, []rangeProbe{{lo: []byte{5}, hi: []byte{5}}}, keyLen),
		"huge count":     {0xff, 0xff, 0xff, 0x7f},
	} {
		if _, err := parseRangeProbes(body, keyLen); err == nil {
			t.Errorf("probe frame %q accepted", name)
		}
	}

	entries := []rangeReplyEntry{
		{kind: rangeEqual},
		{kind: rangeSplit, bounds: [][]byte{{3}}, aggs: []ranges.Agg{{Count: 1, Fp: 2}, {Count: 3, Fp: 4}}},
		{kind: rangeItemsPending},
	}
	reply := appendRangeReply(nil, entries, keyLen)
	got, err := parseRangeReply(reply, keyLen)
	if err != nil {
		t.Fatalf("valid reply rejected: %v", err)
	}
	if len(got) != 3 || got[1].kind != rangeSplit || len(got[1].aggs) != 2 {
		t.Fatalf("reply roundtrip mismatch: %+v", got)
	}
	for name, body := range map[string][]byte{
		"unknown kind": {1, 9},
		"split of one": {1, rangeSplit, 1},
		"truncated":    reply[:len(reply)-2],
		"trailing":     append(append([]byte(nil), reply...), 0),
	} {
		if _, err := parseRangeReply(body, keyLen); err == nil {
			t.Errorf("reply frame %q accepted", name)
		}
	}

	groups := []rangeItemGroup{{probe: 2, keys: [][]byte{
		bytes.Repeat([]byte{1}, keyLen), bytes.Repeat([]byte{2}, keyLen),
	}}}
	items := appendRangeItems(nil, groups, keyLen)
	gg, err := parseRangeItems(items, keyLen)
	if err != nil {
		t.Fatalf("valid items rejected: %v", err)
	}
	if len(gg) != 1 || gg[0].probe != 2 || len(gg[0].keys) != 2 {
		t.Fatalf("items roundtrip mismatch: %+v", gg)
	}
	unsorted := appendRangeItems(nil, []rangeItemGroup{{probe: 0, keys: [][]byte{
		bytes.Repeat([]byte{2}, keyLen), bytes.Repeat([]byte{1}, keyLen),
	}}}, keyLen)
	dupIdx := appendRangeItems(nil, []rangeItemGroup{
		{probe: 1, keys: nil}, {probe: 1, keys: nil},
	}, keyLen)
	for name, body := range map[string][]byte{
		"unsorted keys":    unsorted,
		"repeated index":   dupIdx,
		"truncated":        items[:len(items)-1],
		"oversized group":  {1, 0, 0xff, 0xff, 0x7f},
		"trailing garbage": append(append([]byte(nil), items...), 7),
	} {
		if _, err := parseRangeItems(body, keyLen); err == nil {
			t.Errorf("items frame %q accepted", name)
		}
	}
}

func TestApplyRangedDiffRejections(t *testing.T) {
	bob := []points.Point{{1, 1}, {2, 2}}
	keys := ranges.Keys(testU, []points.Point{{9, 9}})
	// Removal of a key bob does not hold.
	ghost := ranges.Keys(testU, []points.Point{{5, 5}})
	if _, err := ApplyRangedDiff(testU, bob, nil, ghost); err == nil {
		t.Error("ghost removal accepted")
	}
	if _, err := ApplyRangedDiff(testU, bob, [][]byte{{1, 2}}, nil); err == nil {
		t.Error("short added key accepted")
	}
	out := ranges.EncodeKey(nil, points.Point{1, -1 & (1<<40 - 1)}, 0)
	if _, err := ApplyRangedDiff(testU, bob, [][]byte{out}, nil); err == nil {
		t.Error("out-of-universe point accepted")
	}
	got, err := ApplyRangedDiff(testU, bob, keys, ranges.Keys(testU, bob[:1]))
	if err != nil {
		t.Fatal(err)
	}
	want := []points.Point{{2, 2}, {9, 9}}
	if !points.EqualMultisets(got, want) {
		t.Errorf("diff application produced %v", got)
	}
}

// TestRangedWireAdvantage pins the headline regime at test scale: for a
// large set with a tiny difference, ranged sync must move well under the
// bytes of the exact-IBLT path (which pays the strata estimator up
// front).
func TestRangedWireAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance")
	}
	u := points.Universe{Dim: 2, Delta: 1 << 20}
	n, d := 20000, 8
	alice := make([]points.Point, n)
	for i := range alice {
		alice[i] = points.Point{int64(i*7919) % u.Delta, int64(i*104729) % u.Delta}
	}
	bob := points.Clone(alice)
	for i := 0; i < d; i++ {
		bob[i*97] = points.Point{int64(1 + i), int64(2 + i)}
	}
	run := func(alice0 func(transport.Transport) error, bob0 func(transport.Transport) error) int64 {
		at, bt := transport.Pair()
		defer at.Close()
		defer bt.Close()
		done := make(chan error, 1)
		go func() { done <- alice0(at) }()
		if err := bob0(bt); err != nil {
			t.Fatalf("bob: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("alice: %v", err)
		}
		return bt.Stats().Total()
	}
	rcfg := RangedConfig{Universe: u, Seed: 7}
	rangedBytes := run(
		func(tr transport.Transport) error { return RunRangedAlice(bg, tr, rcfg, alice) },
		func(tr transport.Transport) error {
			got, _, err := RunRangedBob(bg, tr, rcfg, bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, alice) {
				t.Error("ranged diverged")
			}
			return nil
		})
	ecfg := ExactConfig{Universe: u, Seed: 7}
	exactBytes := run(
		func(tr transport.Transport) error { return RunExactIBLTAlice(bg, tr, ecfg, alice) },
		func(tr transport.Transport) error {
			got, err := RunExactIBLTBob(bg, tr, ecfg, bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, alice) {
				t.Error("exact diverged")
			}
			return nil
		})
	if rangedBytes*2 > exactBytes {
		t.Errorf("ranged %d bytes vs exact %d: advantage below 2x at n=%d delta=%d",
			rangedBytes, exactBytes, n, d)
	}
	t.Logf("ranged %d bytes, exact-IBLT %d bytes", rangedBytes, exactBytes)
}

// FuzzParseRangeFrame throws arbitrary bytes at all three ranged frame
// parsers; none may panic, and whatever parses must re-encode to an
// equivalent parse.
func FuzzParseRangeFrame(f *testing.F) {
	const keyLen = 12
	f.Add(appendRangeProbes(nil, []rangeProbe{
		{lo: nil, hi: ranges.TopBound(keyLen), agg: ranges.Agg{Count: 5, Fp: 0xdead}},
	}, keyLen), byte(0))
	f.Add(appendRangeReply(nil, []rangeReplyEntry{
		{kind: rangeSplit, bounds: [][]byte{{9}}, aggs: []ranges.Agg{{Count: 1}, {Count: 2, Fp: 3}}},
	}, keyLen), byte(1))
	f.Add(appendRangeItems(nil, []rangeItemGroup{
		{probe: 0, keys: [][]byte{bytes.Repeat([]byte{4}, keyLen)}},
	}, keyLen), byte(2))
	f.Fuzz(func(t *testing.T, body []byte, which byte) {
		switch which % 3 {
		case 0:
			probes, err := parseRangeProbes(body, keyLen)
			if err != nil {
				return
			}
			again, err := parseRangeProbes(appendRangeProbes(nil, probes, keyLen), keyLen)
			if err != nil || len(again) != len(probes) {
				t.Fatalf("probe re-encode drifted: %v", err)
			}
			for _, p := range probes {
				if bytes.Compare(p.lo, p.hi) >= 0 {
					t.Fatal("parser let an empty range through")
				}
			}
		case 1:
			entries, err := parseRangeReply(body, keyLen)
			if err != nil {
				return
			}
			again, err := parseRangeReply(appendRangeReply(nil, entries, keyLen), keyLen)
			if err != nil || len(again) != len(entries) {
				t.Fatalf("reply re-encode drifted: %v", err)
			}
		case 2:
			groups, err := parseRangeItems(body, keyLen)
			if err != nil {
				return
			}
			again, err := parseRangeItems(appendRangeItems(nil, groups, keyLen), keyLen)
			if err != nil || len(again) != len(groups) {
				t.Fatalf("items re-encode drifted: %v", err)
			}
			idx := make([]int, len(groups))
			for i, g := range groups {
				idx[i] = g.probe
			}
			if !sort.IntsAreSorted(idx) {
				t.Fatal("parser let unsorted group indexes through")
			}
		}
	})
}
