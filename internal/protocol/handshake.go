package protocol

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"robustset/internal/core"
	"robustset/internal/transport"
)

// Session-server handshake message tags (0x10 block, disjoint from the
// per-protocol tags so a server can tell a handshake-aware client from a
// legacy point-to-point peer by the first byte).
const (
	// MsgHello opens a session against a multi-dataset server: u8 strategy
	// code | u32 name length | dataset name | u32 config length | strategy
	// config blob.
	MsgHello byte = 0x10
	// MsgAccept answers MsgHello: the dataset's normalized core.Params in
	// the core wire encoding. The client adopts these parameters, so both
	// endpoints derive identical grids and hash functions.
	MsgAccept byte = 0x11
)

// Strategy wire codes carried in MsgHello.
const (
	StrategyRobust    byte = 1
	StrategyAdaptive  byte = 2
	StrategyExactIBLT byte = 3
	StrategyCPI       byte = 4
	StrategyNaive     byte = 5
)

// Feature bits. A client advertises optional protocol features in byte 1
// of the ExactIBLT-family hello config (byte 0 remains the hash count);
// a server that honors a feature echoes the bit in a trailing byte of the
// accept. Legacy endpoints ignore the extra config byte and send a bare
// accept, so each side downgrades the other cleanly: a legacy server
// gets a doubling-path client, a legacy client never sees a feature byte.
const (
	// FeatureRateless negotiates the rateless cell-stream protocol
	// (MsgCellsRequest/MsgCells) in place of the doubling retry path.
	FeatureRateless byte = 1 << 0
)

// MaxDatasetName bounds the dataset-name length a server will parse.
const MaxDatasetName = 255

// Hello is the parsed form of a MsgHello body.
type Hello struct {
	// Strategy is one of the Strategy* wire codes.
	Strategy byte
	// Dataset names the server-side dataset to reconcile against.
	Dataset string
	// Config is an opaque strategy-specific blob (e.g. the exact-IBLT
	// hash count, the CPI capacity) that the serving side must honor for
	// the two parties' sketches to be compatible.
	Config []byte
}

func (h Hello) encode() ([]byte, error) {
	if len(h.Dataset) > MaxDatasetName {
		return nil, fmt.Errorf("protocol: dataset name of %d bytes exceeds %d", len(h.Dataset), MaxDatasetName)
	}
	body := make([]byte, 0, 1+4+len(h.Dataset)+4+len(h.Config))
	body = append(body, h.Strategy)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(h.Dataset)))
	body = append(body, h.Dataset...)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(h.Config)))
	body = append(body, h.Config...)
	return body, nil
}

func parseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 1+4 {
		return h, errors.New("protocol: short hello")
	}
	h.Strategy = body[0]
	body = body[1:]
	// Compare lengths as uint32 before any int conversion: on 32-bit
	// platforms a hostile 0xFFFFFFFF would convert to a negative int and
	// slip past a signed bound check into a panicking slice expression.
	nameLen32 := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if nameLen32 > MaxDatasetName || len(body) < int(nameLen32)+4 {
		return h, errors.New("protocol: malformed hello dataset name")
	}
	nameLen := int(nameLen32)
	h.Dataset = string(body[:nameLen])
	body = body[nameLen:]
	cfgLen32 := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint64(cfgLen32) != uint64(len(body)) {
		return h, errors.New("protocol: malformed hello config")
	}
	cfgLen := int(cfgLen32)
	if cfgLen > 0 {
		h.Config = append([]byte(nil), body...)
	}
	return h, nil
}

// RunHelloClient opens a server session: it sends the hello and blocks
// for the accept, returning the dataset parameters the server dictated.
// A MsgError reply (unknown dataset, unsupported strategy) surfaces as a
// *RemoteError.
func RunHelloClient(ctx context.Context, t transport.Transport, h Hello) (core.Params, error) {
	p, _, err := RunHelloClientExt(ctx, t, h)
	return p, err
}

// RunHelloClientExt is RunHelloClient returning, in addition, the feature
// bits the server echoed in the accept — zero from a legacy server, which
// is exactly the signal a feature-requesting client uses to downgrade.
func RunHelloClientExt(ctx context.Context, t transport.Transport, h Hello) (core.Params, byte, error) {
	body, err := h.encode()
	if err != nil {
		return core.Params{}, 0, err
	}
	if err := send(ctx, t, MsgHello, body); err != nil {
		return core.Params{}, 0, err
	}
	ab, err := recvExpect(ctx, t, MsgAccept)
	if err != nil {
		return core.Params{}, 0, err
	}
	var features byte
	if len(ab) == core.ParamsWireSize+1 {
		features = ab[len(ab)-1]
		ab = ab[:len(ab)-1]
	}
	var p core.Params
	if err := p.UnmarshalBinary(ab); err != nil {
		return core.Params{}, 0, err
	}
	return p, features, nil
}

// RecvHello reads and parses the opening hello of a server session.
func RecvHello(ctx context.Context, t transport.Transport) (Hello, error) {
	body, err := recvExpect(ctx, t, MsgHello)
	if err != nil {
		return Hello{}, err
	}
	return parseHello(body)
}

// SendAccept acknowledges a hello with the dataset's parameters.
func SendAccept(ctx context.Context, t transport.Transport, p core.Params) error {
	return SendAcceptFeatures(ctx, t, p, 0)
}

// SendAcceptFeatures acknowledges a hello, echoing the feature bits the
// server honors. features == 0 produces the legacy bare accept, byte for
// byte — old clients never observe the extension.
func SendAcceptFeatures(ctx context.Context, t transport.Transport, p core.Params, features byte) error {
	blob, err := p.MarshalBinary()
	if err != nil {
		return sendErr(ctx, t, err)
	}
	if features != 0 {
		blob = append(blob, features)
	}
	return send(ctx, t, MsgAccept, blob)
}

// RejectHello refuses a session, relaying reason to the peer, and
// returns reason.
func RejectHello(ctx context.Context, t transport.Transport, reason error) error {
	return SendError(ctx, t, reason)
}

// SendError best-effort-relays err to the peer as MsgError — so it fails
// fast with a *RemoteError instead of blocking until the connection
// drops — and returns err. Callers that fail before entering a protocol
// run (e.g. local configuration errors) use this to preserve the
// protocols' fail-fast contract.
func SendError(ctx context.Context, t transport.Transport, err error) error {
	return sendErr(ctx, t, err)
}

// RunPushBlobAlice pushes a pre-marshaled sketch as the one-shot robust
// protocol's single message. Servers snapshot a Maintainer's sketch under
// their dataset lock and serve concurrent sessions from the blob.
func RunPushBlobAlice(ctx context.Context, t transport.Transport, blob []byte) error {
	return send(ctx, t, MsgSketch, blob)
}
