package protocol

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"robustset/internal/core"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// Session-server handshake message tags (0x10 block, disjoint from the
// per-protocol tags so a server can tell a handshake-aware client from a
// legacy point-to-point peer by the first byte).
const (
	// MsgHello opens a session against a multi-dataset server: u8 strategy
	// code | u32 name length | dataset name | u32 config length | strategy
	// config blob.
	MsgHello byte = 0x10
	// MsgAccept answers MsgHello: the dataset's normalized core.Params in
	// the core wire encoding. The client adopts these parameters, so both
	// endpoints derive identical grids and hash functions.
	MsgAccept byte = 0x11
	// MsgMuxHello asks to multiplex this connection: "MUX1" magic, u8
	// version, u32 per-stream receive window. A mux-capable server
	// answers MsgMuxAccept and both endpoints switch the connection to
	// MUX1 framing, each mux stream then carrying an ordinary
	// MsgHello-opened session. A legacy server treats the tag as a bad
	// handshake and closes the connection, which is the downgrade signal
	// (see RunMuxHelloClient).
	MsgMuxHello byte = 0x12
	// MsgMuxAccept answers MsgMuxHello: u8 version, u32 per-stream
	// receive window of the serving side.
	MsgMuxAccept byte = 0x13
)

// MuxVersion is the multiplexing protocol version spoken by this build.
const MuxVersion = 1

// muxMagic guards MsgMuxHello against stray tag collisions.
const muxMagic = "MUX1"

// Strategy wire codes carried in MsgHello.
const (
	StrategyRobust    byte = 1
	StrategyAdaptive  byte = 2
	StrategyExactIBLT byte = 3
	StrategyCPI       byte = 4
	StrategyNaive     byte = 5
)

// Feature bits. A client advertises optional protocol features in byte 1
// of the ExactIBLT-family hello config (byte 0 remains the hash count);
// a server that honors a feature echoes the bit in a trailing byte of the
// accept. Legacy endpoints ignore the extra config byte and send a bare
// accept, so each side downgrades the other cleanly: a legacy server
// gets a doubling-path client, a legacy client never sees a feature byte.
const (
	// FeatureRateless negotiates the rateless cell-stream protocol
	// (MsgCellsRequest/MsgCells) in place of the doubling retry path.
	FeatureRateless byte = 1 << 0
	// FeatureRanged negotiates range-based divide-and-conquer sync
	// (MsgRangeFingerprints/MsgRangeItems) on the Robust-family hello in
	// place of the sketch exchange.
	FeatureRanged byte = 1 << 1
)

// MaxDatasetName bounds the dataset-name length a server will parse.
const MaxDatasetName = 255

// Hello is the parsed form of a MsgHello body.
type Hello struct {
	// Strategy is one of the Strategy* wire codes.
	Strategy byte
	// Dataset names the server-side dataset to reconcile against.
	Dataset string
	// Config is an opaque strategy-specific blob (e.g. the exact-IBLT
	// hash count, the CPI capacity) that the serving side must honor for
	// the two parties' sketches to be compatible.
	Config []byte
}

func (h Hello) encode() ([]byte, error) {
	if len(h.Dataset) > MaxDatasetName {
		return nil, fmt.Errorf("protocol: dataset name of %d bytes exceeds %d", len(h.Dataset), MaxDatasetName)
	}
	body := make([]byte, 0, 1+4+len(h.Dataset)+4+len(h.Config))
	body = append(body, h.Strategy)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(h.Dataset)))
	body = append(body, h.Dataset...)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(h.Config)))
	body = append(body, h.Config...)
	return body, nil
}

func parseHello(body []byte) (Hello, error) {
	var h Hello
	if len(body) < 1+4 {
		return h, errors.New("protocol: short hello")
	}
	h.Strategy = body[0]
	body = body[1:]
	// Compare lengths as uint32 before any int conversion: on 32-bit
	// platforms a hostile 0xFFFFFFFF would convert to a negative int and
	// slip past a signed bound check into a panicking slice expression.
	nameLen32 := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if nameLen32 > MaxDatasetName || len(body) < int(nameLen32)+4 {
		return h, errors.New("protocol: malformed hello dataset name")
	}
	nameLen := int(nameLen32)
	h.Dataset = string(body[:nameLen])
	body = body[nameLen:]
	cfgLen32 := binary.LittleEndian.Uint32(body)
	body = body[4:]
	if uint64(cfgLen32) != uint64(len(body)) {
		return h, errors.New("protocol: malformed hello config")
	}
	cfgLen := int(cfgLen32)
	if cfgLen > 0 {
		h.Config = append([]byte(nil), body...)
	}
	return h, nil
}

// RunHelloClient opens a server session: it sends the hello and blocks
// for the accept, returning the dataset parameters the server dictated.
// A MsgError reply (unknown dataset, unsupported strategy) surfaces as a
// *RemoteError.
func RunHelloClient(ctx context.Context, t transport.Transport, h Hello) (core.Params, error) {
	p, _, err := RunHelloClientExt(ctx, t, h)
	return p, err
}

// RunHelloClientExt is RunHelloClient returning, in addition, the feature
// bits the server echoed in the accept — zero from a legacy server, which
// is exactly the signal a feature-requesting client uses to downgrade.
func RunHelloClientExt(ctx context.Context, t transport.Transport, h Hello) (core.Params, byte, error) {
	body, err := h.encode()
	if err != nil {
		return core.Params{}, 0, err
	}
	if err := send(ctx, t, MsgHello, body); err != nil {
		return core.Params{}, 0, err
	}
	ab, err := recvExpect(ctx, t, MsgAccept)
	if err != nil {
		return core.Params{}, 0, err
	}
	var features byte
	if len(ab) == core.ParamsWireSize+1 {
		features = ab[len(ab)-1]
		ab = ab[:len(ab)-1]
	}
	var p core.Params
	if err := p.UnmarshalBinary(ab); err != nil {
		return core.Params{}, 0, err
	}
	return p, features, nil
}

// RecvHello reads and parses the opening hello of a server session.
func RecvHello(ctx context.Context, t transport.Transport) (Hello, error) {
	body, err := recvExpect(ctx, t, MsgHello)
	if err != nil {
		return Hello{}, err
	}
	return parseHello(body)
}

// SendAccept acknowledges a hello with the dataset's parameters.
func SendAccept(ctx context.Context, t transport.Transport, p core.Params) error {
	return SendAcceptFeatures(ctx, t, p, 0)
}

// SendAcceptFeatures acknowledges a hello, echoing the feature bits the
// server honors. features == 0 produces the legacy bare accept, byte for
// byte — old clients never observe the extension.
func SendAcceptFeatures(ctx context.Context, t transport.Transport, p core.Params, features byte) error {
	blob, err := p.MarshalBinary()
	if err != nil {
		return sendErr(ctx, t, err)
	}
	if features != 0 {
		blob = append(blob, features)
	}
	return send(ctx, t, MsgAccept, blob)
}

// RejectHello refuses a session, relaying reason to the peer, and
// returns reason.
func RejectHello(ctx context.Context, t transport.Transport, reason error) error {
	return SendError(ctx, t, reason)
}

// SendError best-effort-relays err to the peer as MsgError — so it fails
// fast with a *RemoteError instead of blocking until the connection
// drops — and returns err. Callers that fail before entering a protocol
// run (e.g. local configuration errors) use this to preserve the
// protocols' fail-fast contract.
func SendError(ctx context.Context, t transport.Transport, err error) error {
	return sendErr(ctx, t, err)
}

// RunPushBlobAlice pushes a pre-marshaled sketch as the one-shot robust
// protocol's single message. Servers snapshot a Maintainer's sketch under
// their dataset lock and serve concurrent sessions from the blob.
func RunPushBlobAlice(ctx context.Context, t transport.Transport, blob []byte) error {
	sp := trace.FromContext(ctx).Begin("sketch_send")
	if err := send(ctx, t, MsgSketch, blob); err != nil {
		return err
	}
	sp.End(trace.I("bytes", int64(len(blob))))
	return nil
}

// ---------------------------------------------------------------------
// Connection multiplexing negotiation

// MuxHello is the parsed form of a MsgMuxHello body.
type MuxHello struct {
	// Version is the mux protocol version the client speaks.
	Version byte
	// Window is the client's per-stream receive window in bytes.
	Window uint32
}

func (h MuxHello) encode() []byte {
	body := make([]byte, 0, len(muxMagic)+1+4)
	body = append(body, muxMagic...)
	body = append(body, h.Version)
	return binary.LittleEndian.AppendUint32(body, h.Window)
}

// ParseMuxHello decodes a MsgMuxHello body.
func ParseMuxHello(body []byte) (MuxHello, error) {
	var h MuxHello
	if len(body) != len(muxMagic)+1+4 || string(body[:len(muxMagic)]) != muxMagic {
		return h, errors.New("protocol: malformed mux hello")
	}
	h.Version = body[len(muxMagic)]
	h.Window = binary.LittleEndian.Uint32(body[len(muxMagic)+1:])
	if h.Version == 0 {
		return h, errors.New("protocol: mux hello version 0")
	}
	if h.Window == 0 {
		return h, errors.New("protocol: mux hello window 0")
	}
	return h, nil
}

// ErrMuxUnsupported reports that the peer did not (or will not) accept
// connection multiplexing; callers downgrade to connection-per-session.
var ErrMuxUnsupported = errors.New("protocol: peer does not support multiplexing")

// RunMuxHelloClient negotiates MUX1 framing on a fresh connection: it
// sends the mux hello and blocks for the accept, returning the server's
// per-stream receive window (the client's initial send window). A
// deliberate refusal — the clean connection close a legacy server
// answers the unknown tag with, a relayed MsgError, an unexpected reply
// or a version mismatch — is reported as ErrMuxUnsupported so callers
// fall back to connection-per-session. Transient failures (resets,
// timeouts, torn frames) and context errors pass through unchanged: a
// peer restarting mid-probe must not be mistaken for a legacy peer and
// latch the caller into per-session dialing forever.
func RunMuxHelloClient(ctx context.Context, t transport.Transport, window uint32) (uint32, error) {
	h := MuxHello{Version: MuxVersion, Window: window}
	if err := send(ctx, t, MsgMuxHello, h.encode()); err != nil {
		return 0, err
	}
	body, err := recvExpect(ctx, t, MsgMuxAccept)
	if err != nil {
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		var remote *RemoteError
		if errors.Is(err, io.EOF) || errors.Is(err, ErrUnexpectedMessage) || errors.As(err, &remote) {
			return 0, fmt.Errorf("%w: %v", ErrMuxUnsupported, err)
		}
		return 0, err
	}
	if len(body) != 1+4 {
		return 0, fmt.Errorf("%w: malformed mux accept", ErrMuxUnsupported)
	}
	if v := body[0]; v != MuxVersion {
		return 0, fmt.Errorf("%w: server speaks mux version %d", ErrMuxUnsupported, v)
	}
	serverWindow := binary.LittleEndian.Uint32(body[1:])
	if serverWindow == 0 {
		return 0, fmt.Errorf("%w: server announced window 0", ErrMuxUnsupported)
	}
	return serverWindow, nil
}

// SendMuxAccept acknowledges a mux hello, announcing the server's
// per-stream receive window.
func SendMuxAccept(ctx context.Context, t transport.Transport, window uint32) error {
	body := make([]byte, 0, 1+4)
	body = append(body, MuxVersion)
	body = binary.LittleEndian.AppendUint32(body, window)
	return send(ctx, t, MsgMuxAccept, body)
}

// Opening is the first message of an accepted connection: either a
// legacy single-session hello or a mux negotiation. One connection, two
// dialects — the server dispatches on which arrived.
type Opening struct {
	// Mux is true when the client asked to multiplex the connection.
	Mux bool
	// MuxHello is the parsed negotiation when Mux is true.
	MuxHello MuxHello
	// Hello is the parsed session hello when Mux is false.
	Hello Hello
}

// RecvOpening reads and parses a connection's first message, accepting
// either dialect. This is what lets a mux-capable listener serve legacy
// clients untouched: a plain MsgHello routes to the single-session path.
func RecvOpening(ctx context.Context, t transport.Transport) (Opening, error) {
	typ, body, err := recv(ctx, t)
	if err != nil {
		return Opening{}, err
	}
	switch typ {
	case MsgHello:
		h, err := parseHello(body)
		if err != nil {
			return Opening{}, err
		}
		return Opening{Hello: h}, nil
	case MsgMuxHello:
		mh, err := ParseMuxHello(body)
		if err != nil {
			return Opening{}, err
		}
		return Opening{Mux: true, MuxHello: mh}, nil
	default:
		return Opening{}, fmt.Errorf("%w: got 0x%02x, want hello", ErrUnexpectedMessage, typ)
	}
}
