package protocol

import (
	"testing"

	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/transport"
	"robustset/internal/workload"
)

func TestTwoWaySymmetricExchange(t *testing.T) {
	inst, err := workload.Generate(workload.Config{
		N: 300, Universe: testU, Outliers: 5,
		Noise: workload.NoiseUniform, Scale: 2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Universe: testU, Seed: 23, DiffBudget: 5}
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	type out struct {
		res *core.Result
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := RunTwoWay(bg, at, params, inst.Alice)
		ch <- out{res, err}
	}()
	bobRes, err := RunTwoWay(bg, bt, params, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	aliceSide := <-ch
	if aliceSide.err != nil {
		t.Fatal(aliceSide.err)
	}
	// Each side's result approximates the peer's original data.
	if len(bobRes.SPrime) != len(inst.Alice) {
		t.Errorf("bob's |S'| = %d, want %d", len(bobRes.SPrime), len(inst.Alice))
	}
	if len(aliceSide.res.SPrime) != len(inst.Bob) {
		t.Errorf("alice's |S'| = %d, want %d", len(aliceSide.res.SPrime), len(inst.Bob))
	}
	// Byte accounting must be symmetric (both send one sketch).
	as, bs := at.Stats(), bt.Stats()
	if as.BytesSent != bs.BytesSent || as.BytesRecv != bs.BytesRecv {
		t.Errorf("asymmetric accounting: %+v vs %+v", as, bs)
	}
}

func TestTwoWayExactRegime(t *testing.T) {
	inst, err := workload.Generate(workload.Config{
		N: 200, Universe: testU, Outliers: 6, Noise: workload.NoiseNone, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Universe: testU, Seed: 29, DiffBudget: 6}
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	ch := make(chan *core.Result, 1)
	go func() {
		res, err := RunTwoWay(bg, at, params, inst.Alice)
		if err != nil {
			t.Error(err)
			ch <- nil
			return
		}
		ch <- res
	}()
	bobRes, err := RunTwoWay(bg, bt, params, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	aliceRes := <-ch
	if aliceRes == nil {
		t.Fatal("alice side failed")
	}
	// With zero noise each side ends with exactly the peer's multiset.
	if !points.EqualMultisets(bobRes.SPrime, inst.Alice) {
		t.Error("bob did not recover alice's set exactly")
	}
	if !points.EqualMultisets(aliceRes.SPrime, inst.Bob) {
		t.Error("alice did not recover bob's set exactly")
	}
}

func TestTwoWayPeerFailure(t *testing.T) {
	// A peer with invalid parameters must not hang the healthy side.
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	good := core.Params{Universe: testU, Seed: 1, DiffBudget: 2}
	bad := core.Params{Universe: points.Universe{Dim: 0, Delta: 4}, DiffBudget: 1}
	inst, _ := workload.Generate(workload.Config{N: 20, Universe: testU, Seed: 1})
	done := make(chan error, 1)
	go func() {
		_, err := RunTwoWay(bg, at, bad, inst.Alice)
		done <- err
	}()
	_, bobErr := RunTwoWay(bg, bt, good, inst.Bob)
	if bobErr == nil {
		t.Error("healthy side succeeded against failing peer")
	}
	if err := <-done; err == nil {
		t.Error("bad-params side reported success")
	}
}
