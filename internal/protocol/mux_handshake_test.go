package protocol

import (
	"context"
	"errors"
	"io"
	"testing"

	"robustset/internal/transport"
)

// TestMuxNegotiationRoundTrip drives both ends of the MUX1 negotiation
// over an in-memory link.
func TestMuxNegotiationRoundTrip(t *testing.T) {
	at, bt := transport.Pair()
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		op, err := RecvOpening(ctx, bt)
		if err != nil {
			done <- err
			return
		}
		if !op.Mux || op.MuxHello.Version != MuxVersion || op.MuxHello.Window != 1<<19 {
			done <- errors.New("opening did not carry the mux hello")
			return
		}
		done <- SendMuxAccept(ctx, bt, 1<<21)
	}()
	serverWindow, err := RunMuxHelloClient(ctx, at, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	if serverWindow != 1<<21 {
		t.Fatalf("server window %d, want %d", serverWindow, 1<<21)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMuxHelloLegacyServer simulates the pre-mux server behavior —
// close the connection on the unknown tag — and requires the typed
// downgrade signal, not a raw EOF.
func TestMuxHelloLegacyServer(t *testing.T) {
	at, bt := transport.Pair()
	ctx := context.Background()
	go func() {
		// A legacy server's RecvHello fails on the mux tag and the
		// handler closes the connection without replying.
		_, _ = RecvHello(ctx, bt)
		bt.Close()
	}()
	if _, err := RunMuxHelloClient(ctx, at, 1<<20); !errors.Is(err, ErrMuxUnsupported) {
		t.Fatalf("legacy server produced %v, want ErrMuxUnsupported", err)
	}
}

// TestMuxHelloCancellation: a cancelled context must surface as the
// context's error, never as a spurious legacy-server downgrade.
func TestMuxHelloCancellation(t *testing.T) {
	at, _ := transport.Pair()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := RunMuxHelloClient(ctx, at, 1<<20)
		errCh <- err
	}()
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled negotiation produced %v, want context.Canceled", err)
	}
}

// TestParseMuxHelloRejectsMalformed covers the parse-side validation.
func TestParseMuxHelloRejectsMalformed(t *testing.T) {
	good := MuxHello{Version: MuxVersion, Window: 1 << 20}.encode()
	if _, err := ParseMuxHello(good); err != nil {
		t.Fatalf("well-formed hello rejected: %v", err)
	}
	bad := [][]byte{
		nil,
		[]byte("MUX"),
		[]byte("MUXX\x01\x00\x00\x10\x00"),
		good[:len(good)-1],
		append(append([]byte(nil), good...), 0),
		{'M', 'U', 'X', '1', 0, 0, 0, 16, 0}, // version 0
		{'M', 'U', 'X', '1', 1, 0, 0, 0, 0},  // window 0
	}
	for i, b := range bad {
		if _, err := ParseMuxHello(b); err == nil {
			t.Errorf("malformed hello %d accepted", i)
		}
	}
}

// TestRecvOpeningDispatch pins the two-dialect dispatch: a plain hello
// routes to the legacy single-session path, garbage is rejected, EOF
// propagates.
func TestRecvOpeningDispatch(t *testing.T) {
	at, bt := transport.Pair()
	ctx := context.Background()
	go func() {
		_ = SendError(ctx, at, errors.New("nope"))
	}()
	if _, err := RecvOpening(ctx, bt); err == nil {
		t.Fatal("error frame accepted as opening")
	}

	at2, bt2 := transport.Pair()
	go func() {
		body, _ := Hello{Strategy: StrategyNaive, Dataset: "d"}.encode()
		_ = send(ctx, at2, MsgHello, body)
		at2.Close()
	}()
	op, err := RecvOpening(ctx, bt2)
	if err != nil {
		t.Fatal(err)
	}
	if op.Mux || op.Hello.Dataset != "d" || op.Hello.Strategy != StrategyNaive {
		t.Fatalf("opening mis-dispatched: %+v", op)
	}
	if _, err := RecvOpening(ctx, bt2); !errors.Is(err, io.EOF) {
		t.Fatalf("post-close opening: %v, want EOF", err)
	}
}
