package protocol

import (
	"encoding/binary"
	"errors"
	"testing"

	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/transport"
)

func TestRatelessHappyPath(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RatelessConfig{Universe: testU, Seed: 7}
	runPair(t,
		func(tr transport.Transport) error { return RunRatelessAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunRatelessBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("rateless sync did not converge to S_A")
			}
			return nil
		})
}

func TestRatelessNoDifference(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 150, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RatelessConfig{Universe: testU, Seed: 13}
	runPair(t,
		func(tr transport.Transport) error { return RunRatelessAlice(bg, tr, cfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunRatelessBob(bg, tr, cfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("identical sets changed under rateless sync")
			}
			return nil
		})
}

// TestRatelessDuplicateMultiset: occurrence-indexed keys give the rateless
// path the same multiset semantics as the exact path.
func TestRatelessDuplicateMultiset(t *testing.T) {
	base := points.Point{17, 23}
	var bob []points.Point
	for i := 0; i < 3; i++ {
		bob = append(bob, base.Clone())
	}
	alice := points.Clone(bob)
	alice = append(alice, base.Clone(), base.Clone()) // two extra occurrences

	cfg := RatelessConfig{Universe: testU, Seed: 21}
	runPair(t,
		func(tr transport.Transport) error { return RunRatelessAlice(bg, tr, cfg, alice) },
		func(tr transport.Transport) error {
			got, err := RunRatelessBob(bg, tr, cfg, bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, alice) {
				t.Errorf("got %d points, want %d identical copies", len(got), len(alice))
			}
			return nil
		})
}

// TestRatelessUndershootCheaperThanDoubling is the protocol-level version
// of the tentpole claim: when the capacity seeding is forced far below the
// true difference, the rateless stream pays incremental cells while the
// doubling path pays whole rebuilt tables — strictly more bytes.
func TestRatelessUndershootCheaperThanDoubling(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 2000, 400)
	if err != nil {
		t.Fatal(err)
	}
	run := func(alice func(transport.Transport) error, bob func(transport.Transport) error) int64 {
		at, bt := transport.Pair()
		defer at.Close()
		defer bt.Close()
		done := make(chan error, 1)
		go func() { done <- alice(at) }()
		if err := bob(bt); err != nil {
			t.Fatalf("bob: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("alice: %v", err)
		}
		return bt.Stats().Total()
	}

	// Both capacity seeds forced to ~1/20 of the true difference.
	rcfg := RatelessConfig{Universe: testU, Seed: 7, InitialFactor: 0.05}
	ratelessBytes := run(
		func(tr transport.Transport) error { return RunRatelessAlice(bg, tr, rcfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunRatelessBob(bg, tr, rcfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("rateless result diverged")
			}
			return nil
		})

	ecfg := ExactConfig{Universe: testU, Seed: 7, Slack: 0.05, MaxRetries: 16}
	doublingBytes := run(
		func(tr transport.Transport) error { return RunExactIBLTAlice(bg, tr, ecfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunExactIBLTBob(bg, tr, ecfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("doubling result diverged")
			}
			return nil
		})

	t.Logf("undershoot ×20: rateless %d B, doubling %d B (ratio %.2f)",
		ratelessBytes, doublingBytes, float64(ratelessBytes)/float64(doublingBytes))
	if ratelessBytes >= doublingBytes {
		t.Errorf("rateless (%d B) not cheaper than doubling retries (%d B) under undershoot",
			ratelessBytes, doublingBytes)
	}
}

// TestRatelessBudgetTrips: a budget too small for the difference must
// surface the typed ErrRatelessBudget instead of streaming forever.
func TestRatelessBudgetTrips(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 500, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RatelessConfig{Universe: testU, Seed: 3, MaxBytes: 2048}
	at, bt := transport.Pair()
	defer at.Close()
	defer bt.Close()
	done := make(chan error, 1)
	go func() { done <- RunRatelessAlice(bg, at, cfg, inst.alice) }()
	_, berr := RunRatelessBob(bg, bt, cfg, inst.bob)
	if !errors.Is(berr, ErrRatelessBudget) {
		t.Fatalf("want ErrRatelessBudget, got %v", berr)
	}
	if aerr := <-done; aerr != nil {
		t.Fatalf("alice should see a clean MsgDone after the give-up, got %v", aerr)
	}
}

// TestRatelessAliceServesDoublingFallback: the rateless serving loop must
// answer classic MsgIBLTRequest traffic, so a peer that negotiated down
// mid-handshake still syncs (the estimator halves are wire-identical).
func TestRatelessAliceServesDoublingFallback(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 300, 12)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := RatelessConfig{Universe: testU, Seed: 17}
	ecfg := ExactConfig{Universe: testU, Seed: 17}
	runPair(t,
		func(tr transport.Transport) error { return RunRatelessAlice(bg, tr, rcfg, inst.alice) },
		func(tr transport.Transport) error {
			got, err := RunExactIBLTBob(bg, tr, ecfg, inst.bob)
			if err != nil {
				return err
			}
			if !points.EqualMultisets(got, inst.alice) {
				t.Error("doubling fallback against rateless server diverged")
			}
			return nil
		})
}

// TestRatelessAliceRejectsMalformedRequests drives the serving loop with
// corrupt MORE frames.
func TestRatelessAliceRejectsMalformedRequests(t *testing.T) {
	inst, err := exactInstanceForProtocol(t, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RatelessConfig{Universe: testU, Seed: 1}
	alice := func(tr transport.Transport) error { return RunRatelessAlice(bg, tr, cfg, inst.alice) }

	cases := []struct {
		name string
		body []byte
	}{
		{"short body", []byte{1, 0}},
		{"zero cells", binary.LittleEndian.AppendUint32(nil, 0)},
		{"oversized chunk", binary.LittleEndian.AppendUint32(nil, maxChunkCells+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := driveAlice(t, alice, func(tr transport.Transport) {
				_ = tr.Send(bg, append([]byte{MsgCellsRequest}, tc.body...))
				_, _ = tr.Recv(bg) // the MsgError reply
			})
			if err == nil {
				t.Fatal("malformed cells request accepted")
			}
		})
	}
}

// TestAcceptFeatureNegotiation checks both directions of the accept
// extension: a featured accept surfaces the bits, a bare accept reads as
// zero (the legacy-server signal).
func TestAcceptFeatureNegotiation(t *testing.T) {
	params := core.Params{Universe: testU, Seed: 3, DiffBudget: 4}
	hello := Hello{Strategy: StrategyExactIBLT, Dataset: "d", Config: []byte{4, FeatureRateless}}

	for _, tc := range []struct {
		name  string
		feats byte
	}{
		{"featured accept", FeatureRateless},
		{"legacy bare accept", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			at, bt := transport.Pair()
			defer at.Close()
			defer bt.Close()
			done := make(chan error, 1)
			go func() {
				h, err := RecvHello(bg, at)
				if err != nil {
					done <- err
					return
				}
				if h.Strategy != StrategyExactIBLT || len(h.Config) != 2 || h.Config[1] != FeatureRateless {
					t.Errorf("server parsed hello %+v", h)
				}
				done <- SendAcceptFeatures(bg, at, params, tc.feats)
			}()
			p, feats, err := RunHelloClientExt(bg, bt, hello)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			if feats != tc.feats {
				t.Errorf("client saw features %#x, want %#x", feats, tc.feats)
			}
			if p.Universe != params.Universe {
				t.Errorf("params diverged through the accept: %+v", p)
			}
		})
	}
}
