package protocol

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"robustset/internal/cpi"
	"robustset/internal/gf"
	"robustset/internal/hashutil"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/sketch"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// ---------------------------------------------------------------------
// Naive full transfer

// RunNaiveAlice sends the entire point set — the trivial comparator every
// sublinear protocol must beat.
func RunNaiveAlice(ctx context.Context, t transport.Transport, u points.Universe, pts []points.Point) error {
	if err := u.CheckSet(pts); err != nil {
		return sendErr(ctx, t, err)
	}
	sp := trace.FromContext(ctx).Begin("full_transfer")
	if err := send(ctx, t, MsgSet, points.EncodeSet(pts, u.Dim)); err != nil {
		return err
	}
	sp.End(trace.I("points", int64(len(pts))))
	return nil
}

// RunNaiveBob receives Alice's entire set, which becomes Bob's result.
func RunNaiveBob(ctx context.Context, t transport.Transport, u points.Universe) ([]points.Point, error) {
	body, err := recvExpect(ctx, t, MsgSet)
	if err != nil {
		return nil, err
	}
	return points.DecodeSet(body, u.Dim)
}

// ---------------------------------------------------------------------
// Exact IBLT synchronization (Difference Digest style)

// ExactConfig parameterizes the exact-IBLT comparator. Exact sync treats
// whole points as opaque keys: a noisy pair counts as two differences,
// which is precisely the failure mode robust reconciliation fixes.
type ExactConfig struct {
	Universe points.Universe
	// Seed fixes the estimator and IBLT hash functions (public coins).
	Seed uint64
	// HashCount is the IBLT q (0 → 4).
	HashCount int
	// Slack multiplies the estimated difference when sizing the IBLT
	// (0 → 2.0; the strata estimate is within ~2× whp).
	Slack float64
	// MaxRetries bounds decode-failure retries, each doubling capacity
	// (0 → 4).
	MaxRetries int
}

func (c ExactConfig) filled() ExactConfig {
	if c.HashCount == 0 {
		c.HashCount = 4
	}
	if c.Slack == 0 {
		c.Slack = 2.0
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	return c
}

// exactKeys builds occurrence-indexed point-encoding keys, giving the
// exact protocols multiset semantics (identical points get distinct keys
// deterministically on both sides).
func exactKeys(u points.Universe, pts []points.Point) [][]byte {
	occ := make(map[string]uint32, len(pts))
	keys := make([][]byte, len(pts))
	for i, p := range pts {
		enc := points.EncodeNew(p)
		o := occ[string(enc)]
		occ[string(enc)] = o + 1
		keys[i] = binary.LittleEndian.AppendUint32(enc, o)
	}
	return keys
}

func exactStrata(cfg ExactConfig, keys [][]byte) (*sketch.Strata, error) {
	s, err := sketch.NewStrata(sketch.StrataConfig{
		KeyLen: points.EncodedSize(cfg.Universe.Dim) + 4,
		Seed:   hashutil.DeriveSeed(cfg.Seed, "exact/strata"),
	})
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		s.Add(k)
	}
	return s, nil
}

func exactTable(cfg ExactConfig, keys [][]byte, capacity int) (*iblt.Table, error) {
	t, err := iblt.New(iblt.Config{
		Cells:     iblt.RecommendedCells(capacity, cfg.HashCount),
		HashCount: cfg.HashCount,
		KeyLen:    points.EncodedSize(cfg.Universe.Dim) + 4,
		Seed:      hashutil.DeriveSeed(cfg.Seed, "exact/iblt"),
	})
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		t.Insert(k)
	}
	return t, nil
}

// RunExactIBLTAlice serves Alice's side of exact-IBLT sync: estimator
// first, then exactly-sized tables on request.
func RunExactIBLTAlice(ctx context.Context, t transport.Transport, cfg ExactConfig, pts []points.Point) error {
	cfg = cfg.filled()
	tr := trace.FromContext(ctx)
	if err := cfg.Universe.CheckSet(pts); err != nil {
		return sendErr(ctx, t, err)
	}
	keys := exactKeys(cfg.Universe, pts)
	sp := tr.Begin("strata")
	st, err := exactStrata(cfg, keys)
	if err != nil {
		return sendErr(ctx, t, err)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		return sendErr(ctx, t, err)
	}
	if err := send(ctx, t, MsgStrata, blob); err != nil {
		return err
	}
	sp.End(trace.I("bytes", int64(len(blob))))
	for {
		typ, body, err := recv(ctx, t)
		if err != nil {
			return err
		}
		switch typ {
		case MsgDone:
			return nil
		case MsgIBLTRequest:
			round := tr.Begin("iblt_round")
			tr.Stat("rounds", 1)
			if len(body) != 4 {
				return sendErr(ctx, t, errors.New("protocol: malformed IBLT request"))
			}
			capacity := int(binary.LittleEndian.Uint32(body))
			if capacity < 1 || capacity > 1<<24 {
				return sendErr(ctx, t, fmt.Errorf("protocol: capacity %d out of range", capacity))
			}
			tbl, err := exactTable(cfg, keys, capacity)
			if err != nil {
				return sendErr(ctx, t, err)
			}
			tb, err := tbl.MarshalBinary()
			if err != nil {
				return sendErr(ctx, t, err)
			}
			if err := send(ctx, t, MsgIBLT, tb); err != nil {
				return err
			}
			round.End(trace.I("capacity", int64(capacity)))
		default:
			return sendErr(ctx, t, fmt.Errorf("%w: 0x%02x", ErrUnexpectedMessage, typ))
		}
	}
}

// RunExactIBLTBob drives Bob's side of exact-IBLT sync. On success Bob's
// result equals Alice's multiset exactly.
func RunExactIBLTBob(ctx context.Context, t transport.Transport, cfg ExactConfig, bobPts []points.Point) ([]points.Point, error) {
	cfg = cfg.filled()
	tr := trace.FromContext(ctx)
	if err := cfg.Universe.CheckSet(bobPts); err != nil {
		return nil, abort(ctx, t, err)
	}
	keys := exactKeys(cfg.Universe, bobPts)
	sp := tr.Begin("strata")
	blob, err := recvExpect(ctx, t, MsgStrata)
	if err != nil {
		return nil, err
	}
	aliceStrata := new(sketch.Strata)
	if err := aliceStrata.UnmarshalBinary(blob); err != nil {
		return nil, abort(ctx, t, err)
	}
	mine, err := exactStrata(cfg, keys)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	est, err := sketch.EstimateStrataDiff(aliceStrata, mine)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	sp.End(trace.I("est", int64(est)))
	tr.Stat("estimated_diff", int64(est))
	capacity := int(est*cfg.Slack) + 8
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		round := tr.Begin("iblt_round")
		tr.Stat("rounds", 1)
		var req [4]byte
		binary.LittleEndian.PutUint32(req[:], uint32(capacity))
		if err := send(ctx, t, MsgIBLTRequest, req[:]); err != nil {
			return nil, err
		}
		tb, err := recvExpect(ctx, t, MsgIBLT)
		if err != nil {
			return nil, err
		}
		aliceTbl := new(iblt.Table)
		if err := aliceTbl.UnmarshalBinary(tb); err != nil {
			return nil, abort(ctx, t, err)
		}
		mineTbl, err := exactTable(cfg, keys, capacity)
		if err != nil {
			return nil, abort(ctx, t, err)
		}
		if mineTbl.Config() != aliceTbl.Config() {
			return nil, abort(ctx, t, errors.New("protocol: exact sync table configs diverged"))
		}
		work := aliceTbl
		if err := work.Sub(mineTbl); err != nil {
			return nil, abort(ctx, t, err)
		}
		diff, derr := work.Decode()
		round.End(trace.I("capacity", int64(capacity)), trace.I("cells", int64(mineTbl.Config().Cells)),
			trace.I("decoded", boolStat(derr == nil)))
		if derr != nil {
			tr.Stat("decode_retries", 1)
			lastErr = derr
			capacity *= 2
			continue
		}
		tr.Stat("actual_diff", int64(len(diff.Pos)+len(diff.Neg)))
		ap := tr.Begin("apply")
		res, err := applyExactDiff(cfg.Universe, bobPts, diff)
		if err != nil {
			return nil, abort(ctx, t, err)
		}
		ap.End(trace.I("added", int64(len(diff.Pos))), trace.I("removed", int64(len(diff.Neg))))
		return res, send(ctx, t, MsgDone, nil)
	}
	_ = send(ctx, t, MsgDone, nil)
	return nil, fmt.Errorf("protocol: exact IBLT sync failed after retries: %w", lastErr)
}

// applyExactDiff turns decoded keys back into points: Alice-only keys are
// added, Bob-only keys name Bob's own points to drop.
func applyExactDiff(u points.Universe, bobPts []points.Point, diff *iblt.Diff) ([]points.Point, error) {
	encSize := points.EncodedSize(u.Dim)
	drop := make(map[string]int, len(diff.Neg))
	for _, k := range diff.Neg {
		if len(k) != encSize+4 {
			return nil, fmt.Errorf("protocol: exact diff key of %d bytes", len(k))
		}
		drop[string(k[:encSize])]++
	}
	out := make([]points.Point, 0, len(bobPts)+len(diff.Pos)-len(diff.Neg))
	for _, p := range bobPts {
		enc := points.EncodeNew(p)
		if drop[string(enc)] > 0 {
			drop[string(enc)]--
			continue
		}
		out = append(out, p.Clone())
	}
	for _, v := range drop {
		if v != 0 {
			return nil, errors.New("protocol: exact diff names points Bob does not hold")
		}
	}
	for _, k := range diff.Pos {
		if len(k) != encSize+4 {
			return nil, fmt.Errorf("protocol: exact diff key of %d bytes", len(k))
		}
		p, err := points.Decode(k[:encSize], u.Dim)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Characteristic-polynomial (CPI) synchronization

// CPIConfig parameterizes the CPI comparator.
type CPIConfig struct {
	Universe points.Universe
	// Seed fixes sample points and the element-hash function.
	Seed uint64
	// Capacity is the maximum recoverable difference |AΔB|. CPI has no
	// cheap retry path (the sketch size is fixed up front), so experiments
	// provision it with an oracle bound.
	Capacity int
}

// cpiElems maps a point multiset to distinct 61-bit field elements via a
// keyed hash over occurrence-indexed encodings, returning the elements
// and the element→point lookup used for payload serving and local drops.
func cpiElems(cfg CPIConfig, pts []points.Point) ([]uint64, map[uint64]points.Point, error) {
	h := hashutil.NewHasher(hashutil.DeriveSeed(cfg.Seed, "cpisync/elem"))
	keys := exactKeys(cfg.Universe, pts)
	elems := make([]uint64, len(keys))
	lookup := make(map[uint64]points.Point, len(keys))
	for i, k := range keys {
		e := h.Hash(k) % gf.P
		if _, dup := lookup[e]; dup {
			return nil, nil, fmt.Errorf("protocol: cpi element hash collision (p ≈ n²/2⁶¹); use a different seed")
		}
		elems[i] = e
		lookup[e] = pts[i]
	}
	return elems, lookup, nil
}

// RunCPIAlice serves Alice's side of CPI sync: one sketch, then point
// payloads for whichever element hashes Bob asks for.
func RunCPIAlice(ctx context.Context, t transport.Transport, cfg CPIConfig, pts []points.Point) error {
	if err := cfg.Universe.CheckSet(pts); err != nil {
		return sendErr(ctx, t, err)
	}
	tr := trace.FromContext(ctx)
	elems, lookup, err := cpiElems(cfg, pts)
	if err != nil {
		return sendErr(ctx, t, err)
	}
	sp := tr.Begin("cpi_sketch")
	sk, err := cpi.NewSketch(elems, cfg.Capacity, hashutil.DeriveSeed(cfg.Seed, "cpisync/sketch"))
	if err != nil {
		return sendErr(ctx, t, err)
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		return sendErr(ctx, t, err)
	}
	if err := send(ctx, t, MsgCPISketch, blob); err != nil {
		return err
	}
	sp.End(trace.I("bytes", int64(len(blob))))
	for {
		typ, body, err := recv(ctx, t)
		if err != nil {
			return err
		}
		switch typ {
		case MsgDone:
			return nil
		case MsgPayloadRequest:
			tr.Stat("rounds", 1)
			if len(body) < 4 {
				return sendErr(ctx, t, errors.New("protocol: malformed payload request"))
			}
			n := int(binary.LittleEndian.Uint32(body))
			if len(body) != 4+8*n {
				return sendErr(ctx, t, errors.New("protocol: malformed payload request body"))
			}
			reply := make([]points.Point, 0, n)
			for i := 0; i < n; i++ {
				e := binary.LittleEndian.Uint64(body[4+8*i:])
				p, ok := lookup[e]
				if !ok {
					return sendErr(ctx, t, fmt.Errorf("protocol: peer requested unknown element %d", e))
				}
				reply = append(reply, p)
			}
			if err := send(ctx, t, MsgPayloads, points.EncodeSet(reply, cfg.Universe.Dim)); err != nil {
				return err
			}
		default:
			return sendErr(ctx, t, fmt.Errorf("%w: 0x%02x", ErrUnexpectedMessage, typ))
		}
	}
}

// RunCPIBob drives Bob's side of CPI sync. On success Bob's result equals
// Alice's multiset exactly; if the difference exceeds cfg.Capacity it
// returns cpi.ErrCapacityExceeded.
func RunCPIBob(ctx context.Context, t transport.Transport, cfg CPIConfig, bobPts []points.Point) ([]points.Point, error) {
	if err := cfg.Universe.CheckSet(bobPts); err != nil {
		return nil, abort(ctx, t, err)
	}
	tr := trace.FromContext(ctx)
	elems, lookup, err := cpiElems(cfg, bobPts)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	sp := tr.Begin("cpi_sketch")
	blob, err := recvExpect(ctx, t, MsgCPISketch)
	if err != nil {
		return nil, err
	}
	aliceSk := new(cpi.Sketch)
	if err := aliceSk.UnmarshalBinary(blob); err != nil {
		return nil, abort(ctx, t, err)
	}
	mine, err := cpi.NewSketch(elems, cfg.Capacity, hashutil.DeriveSeed(cfg.Seed, "cpisync/sketch"))
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	onlyA, onlyB, err := cpi.Diff(aliceSk, mine)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	sp.End(trace.I("only_a", int64(len(onlyA))), trace.I("only_b", int64(len(onlyB))))
	tr.Stat("actual_diff", int64(len(onlyA)+len(onlyB)))
	ap := tr.Begin("apply")
	defer func() { ap.End() }()
	var fetched []points.Point
	if len(onlyA) > 0 {
		req := binary.LittleEndian.AppendUint32(nil, uint32(len(onlyA)))
		for _, e := range onlyA {
			req = binary.LittleEndian.AppendUint64(req, e)
		}
		if err := send(ctx, t, MsgPayloadRequest, req); err != nil {
			return nil, err
		}
		body, err := recvExpect(ctx, t, MsgPayloads)
		if err != nil {
			return nil, err
		}
		fetched, err = points.DecodeSet(body, cfg.Universe.Dim)
		if err != nil {
			return nil, abort(ctx, t, err)
		}
		if len(fetched) != len(onlyA) {
			return nil, abort(ctx, t, fmt.Errorf("protocol: got %d payloads for %d requests", len(fetched), len(onlyA)))
		}
	}
	dropPts := make(map[string]int)
	for _, e := range onlyB {
		p, ok := lookup[e]
		if !ok {
			return nil, abort(ctx, t, fmt.Errorf("protocol: cpi names element %d Bob does not hold", e))
		}
		dropPts[string(points.EncodeNew(p))]++
	}
	out := make([]points.Point, 0, len(bobPts)+len(fetched)-len(onlyB))
	for _, p := range bobPts {
		enc := points.EncodeNew(p)
		if dropPts[string(enc)] > 0 {
			dropPts[string(enc)]--
			continue
		}
		out = append(out, p.Clone())
	}
	out = append(out, fetched...)
	return out, send(ctx, t, MsgDone, nil)
}
