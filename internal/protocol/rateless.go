package protocol

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"robustset/internal/hashutil"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/sketch"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// ---------------------------------------------------------------------
// Rateless incremental synchronization
//
// The rateless protocol replaces the doubling retry loop of exact-IBLT
// sync with an extendable sketch: after the same strata-estimator opening,
// the fetching side streams fixed-increment ranges of rateless coded cells
// (internal/iblt's CellStream) until its decoder certifies completion.
// A mis-estimated difference then costs extra increments proportional to
// the shortfall instead of whole rebuilt-and-resent tables — the wire cost
// tracks the actual difference, not the estimate.
//
// Wire shape (Bob fetches from Alice):
//
//	Alice → MsgStrata
//	loop:  Bob → MsgCellsRequest(n)   ("MORE")
//	       Alice → MsgCells(block)    ("CELLS")
//	until decode (or Bob's byte budget trips), then Bob → MsgDone.
//
// The serving loop also answers MsgIBLTRequest with classic exactly-sized
// tables, so a peer that negotiated down to the doubling path mid-session
// is still served correctly.

// Rateless message tags.
const (
	// MsgCellsRequest asks the serving side for the next cells of the
	// rateless stream: body is u32 cell count ("MORE").
	MsgCellsRequest byte = 0x0e
	// MsgCells carries one iblt.CellBlock ("CELLS").
	MsgCells byte = 0x0f
)

// ErrRatelessBudget is returned by the fetching side when the cell-stream
// byte budget is exhausted before the decoder completes — the typed
// give-up that replaces the doubling path's "failed after retries".
var ErrRatelessBudget = errors.New("protocol: rateless cell budget exhausted before decode")

const (
	// minChunkCells floors every requested increment, so near-zero
	// estimates still make progress.
	minChunkCells = 8
	// maxChunkCells bounds a single requested increment (allocation
	// guard on the serving side).
	maxChunkCells = 1 << 20
	// defaultRatelessBudget bounds the total streamed cell bytes when the
	// config does not say otherwise.
	defaultRatelessBudget = 64 << 20
)

// RatelessConfig parameterizes the rateless comparator. The estimator
// opening is wire-identical to ExactConfig's (same seed derivations), so
// one serving loop can answer both the rateless and the doubling path.
type RatelessConfig struct {
	Universe points.Universe
	// Seed fixes the estimator and cell-stream hash functions.
	Seed uint64
	// HashCount is the IBLT q used only when a peer falls back to the
	// doubling path mid-session (0 → 4).
	HashCount int
	// InitialFactor scales the strata estimate into the first requested
	// increment (0 → 1.4, the stream's empirical decode overhead).
	InitialFactor float64
	// MaxBytes caps the total streamed cell bytes before the fetching
	// side gives up with ErrRatelessBudget (0 → 64 MiB).
	MaxBytes int64
}

func (c RatelessConfig) filled() RatelessConfig {
	if c.HashCount == 0 {
		c.HashCount = 4
	}
	if c.InitialFactor == 0 || c.InitialFactor < 0 ||
		math.IsNaN(c.InitialFactor) || math.IsInf(c.InitialFactor, 0) {
		// Non-finite or negative factors would turn the first request into
		// an implementation-defined float→int conversion; the Session layer
		// rejects them up front, and direct protocol users get the default.
		c.InitialFactor = 1.4
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = defaultRatelessBudget
	}
	return c
}

// maxChunkFor bounds one requested increment for the given key length:
// the cell-count ceiling, further capped so a full chunk's wire block
// stays far below the transport frame limit even at extreme dimensions.
func maxChunkFor(keyLen int) int {
	const maxChunkBytes = 64 << 20
	if byCap := maxChunkBytes / (iblt.CellOverheadBytes + keyLen); byCap < maxChunkCells {
		return byCap
	}
	return maxChunkCells
}

// exact returns the ExactConfig serving the doubling-path fallback under
// the same public coins.
func (c RatelessConfig) exact() ExactConfig {
	return ExactConfig{Universe: c.Universe, Seed: c.Seed, HashCount: c.HashCount}
}

// extend returns the cell-stream configuration both endpoints derive.
func (c RatelessConfig) extend() iblt.ExtendConfig {
	return iblt.ExtendConfig{
		KeyLen: points.EncodedSize(c.Universe.Dim) + 4,
		Seed:   hashutil.DeriveSeed(c.Seed, "rateless/cells"),
	}
}

// parseCells validates a MsgCells body into a cell block. It fronts every
// block the fetching side accepts, exactly as parseHello fronts sessions.
func parseCells(body []byte) (*iblt.CellBlock, error) {
	b := new(iblt.CellBlock)
	if err := b.UnmarshalBinary(body); err != nil {
		return nil, err
	}
	return b, nil
}

// RunRatelessAlice serves Alice's side of rateless sync: estimator first,
// then cell-stream increments (or classic tables, for a fallen-back peer)
// on request until MsgDone.
func RunRatelessAlice(ctx context.Context, t transport.Transport, cfg RatelessConfig, pts []points.Point) error {
	cfg = cfg.filled()
	tr := trace.FromContext(ctx)
	if err := cfg.Universe.CheckSet(pts); err != nil {
		return sendErr(ctx, t, err)
	}
	keys := exactKeys(cfg.Universe, pts)
	sp := tr.Begin("strata")
	st, err := exactStrata(cfg.exact(), keys)
	if err != nil {
		return sendErr(ctx, t, err)
	}
	blob, err := st.MarshalBinary()
	if err != nil {
		return sendErr(ctx, t, err)
	}
	if err := send(ctx, t, MsgStrata, blob); err != nil {
		return err
	}
	sp.End(trace.I("bytes", int64(len(blob))))
	var stream *iblt.CellStream // built lazily on the first request
	// One block and one encode buffer serve every cell request of the
	// session: EmitInto and AppendBinary reuse their storage, so the
	// steady-state serve loop allocates nothing per increment.
	var blk iblt.CellBlock
	var cellBuf []byte
	for {
		typ, body, err := recv(ctx, t)
		if err != nil {
			return err
		}
		switch typ {
		case MsgDone:
			return nil
		case MsgCellsRequest:
			round := tr.Begin("cells_round")
			tr.Stat("rounds", 1)
			if len(body) != 4 {
				return sendErr(ctx, t, errors.New("protocol: malformed cells request"))
			}
			n := int(binary.LittleEndian.Uint32(body))
			if max := maxChunkFor(cfg.extend().KeyLen); n < 1 || n > max {
				return sendErr(ctx, t, fmt.Errorf("protocol: cells request %d outside [1,%d]", n, max))
			}
			if stream == nil {
				if stream, err = iblt.NewCellStream(cfg.extend(), keys); err != nil {
					return sendErr(ctx, t, err)
				}
			}
			if stream.Frontier()+n > iblt.MaxStreamCells {
				return sendErr(ctx, t, fmt.Errorf("protocol: cell stream beyond %d cells", iblt.MaxStreamCells))
			}
			stream.EmitInto(&blk, n)
			cellBuf, err = blk.AppendBinary(cellBuf[:0])
			if err != nil {
				return sendErr(ctx, t, err)
			}
			if err := send(ctx, t, MsgCells, cellBuf); err != nil {
				return err
			}
			round.End(trace.I("chunk", int64(n)), trace.I("frontier", int64(stream.Frontier())))
		case MsgIBLTRequest:
			// Doubling-path fallback: a peer that did not (or could not)
			// negotiate the rateless feature speaks classic exact sync.
			round := tr.Begin("iblt_round")
			tr.Stat("rounds", 1)
			if len(body) != 4 {
				return sendErr(ctx, t, errors.New("protocol: malformed IBLT request"))
			}
			capacity := int(binary.LittleEndian.Uint32(body))
			if capacity < 1 || capacity > 1<<24 {
				return sendErr(ctx, t, fmt.Errorf("protocol: capacity %d out of range", capacity))
			}
			tbl, err := exactTable(cfg.exact().filled(), keys, capacity)
			if err != nil {
				return sendErr(ctx, t, err)
			}
			tb, err := tbl.MarshalBinary()
			if err != nil {
				return sendErr(ctx, t, err)
			}
			if err := send(ctx, t, MsgIBLT, tb); err != nil {
				return err
			}
			round.End(trace.I("capacity", int64(capacity)))
		default:
			return sendErr(ctx, t, fmt.Errorf("%w: 0x%02x", ErrUnexpectedMessage, typ))
		}
	}
}

// RunRatelessBob drives Bob's side of rateless sync: estimate, then
// request increments — the first sized from the estimate, later ones a
// third of everything streamed so far — until the decoder certifies
// completion. On success Bob's result equals Alice's multiset exactly.
func RunRatelessBob(ctx context.Context, t transport.Transport, cfg RatelessConfig, bobPts []points.Point) ([]points.Point, error) {
	cfg = cfg.filled()
	tr := trace.FromContext(ctx)
	if err := cfg.Universe.CheckSet(bobPts); err != nil {
		return nil, abort(ctx, t, err)
	}
	keys := exactKeys(cfg.Universe, bobPts)
	sp := tr.Begin("strata")
	blob, err := recvExpect(ctx, t, MsgStrata)
	if err != nil {
		return nil, err
	}
	aliceStrata := new(sketch.Strata)
	if err := aliceStrata.UnmarshalBinary(blob); err != nil {
		return nil, abort(ctx, t, err)
	}
	mine, err := exactStrata(cfg.exact(), keys)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	est, err := sketch.EstimateStrataDiff(aliceStrata, mine)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	sp.End(trace.I("est", int64(est)))
	tr.Stat("estimated_diff", int64(est))
	dec, err := iblt.NewCellDecoder(cfg.extend(), keys)
	if err != nil {
		return nil, abort(ctx, t, err)
	}
	cellBytes := int64(iblt.CellOverheadBytes + points.EncodedSize(cfg.Universe.Dim) + 4)
	budgetCells := cfg.MaxBytes / cellBytes
	maxChunk := maxChunkFor(cfg.extend().KeyLen)
	// Clamp the (peer-influenced) estimate before converting: a hostile
	// strata blob must not drive an out-of-range float→int conversion.
	if est*cfg.InitialFactor > float64(maxChunk) {
		est = float64(maxChunk) / cfg.InitialFactor
	}
	chunk := int(est*cfg.InitialFactor) + minChunkCells
	// One reusable block parses every received increment (AddBlock
	// copies what it keeps), mirroring the serving side's reuse.
	block := new(iblt.CellBlock)
	for {
		if remaining := budgetCells - int64(dec.Frontier()); int64(chunk) > remaining {
			if remaining < minChunkCells {
				return nil, abort(ctx, t, fmt.Errorf("%w: %d cells (%d bytes) streamed",
					ErrRatelessBudget, dec.Frontier(), int64(dec.Frontier())*cellBytes))
			}
			chunk = int(remaining)
		}
		if chunk > maxChunk {
			chunk = maxChunk
		}
		round := tr.Begin("cells_round")
		tr.Stat("rounds", 1)
		var req [4]byte
		binary.LittleEndian.PutUint32(req[:], uint32(chunk))
		if err := send(ctx, t, MsgCellsRequest, req[:]); err != nil {
			return nil, err
		}
		body, err := recvExpect(ctx, t, MsgCells)
		if err != nil {
			return nil, err
		}
		if err := block.UnmarshalBinary(body); err != nil {
			return nil, abort(ctx, t, err)
		}
		if block.Len() != chunk {
			return nil, abort(ctx, t, fmt.Errorf("protocol: peer sent %d cells, %d requested", block.Len(), chunk))
		}
		if err := dec.AddBlock(block); err != nil {
			return nil, abort(ctx, t, err)
		}
		diff, ok := dec.Decoded()
		round.End(trace.I("chunk", int64(chunk)),
			trace.I("frontier", int64(dec.Frontier())), trace.I("decoded", boolStat(ok)))
		if ok {
			ap := tr.Begin("apply")
			res, err := applyExactDiff(cfg.Universe, bobPts, diff)
			if err != nil {
				return nil, abort(ctx, t, err)
			}
			ap.End(trace.I("added", int64(len(diff.Pos))), trace.I("removed", int64(len(diff.Neg))))
			tr.Stat("actual_diff", int64(len(diff.Pos)+len(diff.Neg)))
			return res, send(ctx, t, MsgDone, nil)
		}
		// Geometric growth: each round adds a third of everything streamed
		// so far, so total cells overshoot the point of decodability by at
		// most ~33% while the number of round trips stays logarithmic.
		chunk = dec.Frontier() / 3
		if chunk < minChunkCells {
			chunk = minChunkCells
		}
	}
}
