package protocol

import (
	"context"
	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/transport"
)

// RunTwoWay executes the symmetric two-way robust protocol: both parties
// call this same function, each pushing its own multiresolution sketch
// while reconciling against the peer's. As the paper notes, two-way
// robust reconciliation does not converge the two sets to equality — each
// party ends close (in EMD) to the *other's original* data; callers
// wanting union semantics ingest Result.Added instead of adopting
// Result.SPrime.
//
// The sketch is sent from a goroutine while the peer's is read, so two
// parties running RunTwoWay against each other cannot deadlock even when
// both sketches exceed the transport's buffering.
func RunTwoWay(ctx context.Context, t transport.Transport, p core.Params, pts []points.Point) (*core.Result, error) {
	sk, err := core.BuildSketch(p, pts)
	if err != nil {
		return nil, sendErr(ctx, t, err)
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		return nil, sendErr(ctx, t, err)
	}
	sendDone := make(chan error, 1)
	go func() { sendDone <- send(ctx, t, MsgSketch, blob) }()
	body, recvErr := recvExpect(ctx, t, MsgSketch)
	if err := <-sendDone; err != nil {
		return nil, err
	}
	if recvErr != nil {
		return nil, recvErr
	}
	var peer core.Sketch
	if err := peer.UnmarshalBinary(body); err != nil {
		return nil, sendErr(ctx, t, err)
	}
	return core.Reconcile(&peer, pts)
}
