// Package protocol implements the two-party wire protocols of this
// module: the robust reconciliation protocol in its one-shot and
// estimate-first variants, and the three comparators (naive transfer,
// exact IBLT sync, characteristic-polynomial sync). Each protocol is a
// pair of blocking session functions — RunXxxAlice / RunXxxBob — that
// drive a transport.Transport until the exchange completes, so the same
// code runs over an in-memory pipe in tests and over TCP in deployments.
//
// Every message is a one-byte type tag followed by a protocol-specific
// body. A party that hits an unrecoverable error sends MsgError with a
// human-readable reason before returning, so the peer fails fast instead
// of blocking.
package protocol

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"robustset/internal/trace"
	"robustset/internal/transport"
)

// init registers the wire tags' mnemonics with the trace layer, which
// attributes bytes by leading tag byte; the mapping lives here so the
// dependency points protocol → trace only.
func init() {
	for tag, name := range map[byte]string{
		MsgSketch:         "SKETCH",
		MsgEstRequest:     "EST_REQUEST",
		MsgEstimators:     "ESTIMATORS",
		MsgLevelRequest:   "LEVEL_REQUEST",
		MsgLevelTable:     "LEVEL_TABLE",
		MsgDone:           "DONE",
		MsgSet:            "SET",
		MsgStrata:         "STRATA",
		MsgIBLTRequest:    "IBLT_REQUEST",
		MsgIBLT:           "IBLT",
		MsgCPISketch:      "CPI_SKETCH",
		MsgPayloadRequest: "PAYLOAD_REQUEST",
		MsgPayloads:       "PAYLOADS",
		MsgError:          "ERROR",
		MsgCellsRequest:   "CELLS_REQUEST",
		MsgCells:          "CELLS",
		MsgHello:          "HELLO",
		MsgAccept:         "ACCEPT",
		MsgMuxHello:       "MUX_HELLO",
		MsgMuxAccept:      "MUX_ACCEPT",
	} {
		trace.RegisterFrameName(tag, name)
	}
}

// Message type tags.
const (
	// MsgSketch carries a core.Sketch (robust one-shot push).
	MsgSketch byte = 0x01
	// MsgEstRequest asks Alice for level estimators: body is
	// u32 estimatorK.
	MsgEstRequest byte = 0x02
	// MsgEstimators carries Alice's per-level bottom-k estimators as a
	// u32-count list of u32-length-prefixed blobs.
	MsgEstimators byte = 0x03
	// MsgLevelRequest asks Alice for one level table: u16 level,
	// u32 capacity.
	MsgLevelRequest byte = 0x04
	// MsgLevelTable carries one IBLT blob.
	MsgLevelTable byte = 0x05
	// MsgDone signals the initiator is finished (success or give-up).
	MsgDone byte = 0x06
	// MsgSet carries a raw point set (points.EncodeSet format).
	MsgSet byte = 0x07
	// MsgStrata carries a strata difference estimator.
	MsgStrata byte = 0x08
	// MsgIBLTRequest asks for an exact-sync IBLT: u32 capacity.
	MsgIBLTRequest byte = 0x09
	// MsgIBLT carries the exact-sync IBLT blob.
	MsgIBLT byte = 0x0a
	// MsgCPISketch carries a cpi.Sketch blob.
	MsgCPISketch byte = 0x0b
	// MsgPayloadRequest asks for point payloads by element hash: a
	// u32-count list of u64 hashes.
	MsgPayloadRequest byte = 0x0c
	// MsgPayloads answers MsgPayloadRequest with points.EncodeSet data in
	// request order.
	MsgPayloads byte = 0x0d
	// MsgError carries a UTF-8 reason; the sender is aborting.
	MsgError byte = 0x7f
)

// RemoteError is an error relayed from the peer via MsgError.
type RemoteError struct{ Reason string }

func (e *RemoteError) Error() string { return "protocol: peer error: " + e.Reason }

// ErrUnexpectedMessage reports a protocol-state violation.
var ErrUnexpectedMessage = errors.New("protocol: unexpected message type")

// send transmits a typed message. The tag-plus-body encoding is built
// in a recycled buffer: Transport.Send does not retain the slice, so it
// goes straight back to the pool and the per-message allocation on the
// send path disappears.
func send(ctx context.Context, t transport.Transport, typ byte, body []byte) error {
	msg := transport.GetBuf(1 + len(body))
	msg[0] = typ
	copy(msg[1:], body)
	err := t.Send(ctx, msg)
	transport.PutBuf(msg)
	return err
}

// sendErr best-effort-notifies the peer and returns the original error.
func sendErr(ctx context.Context, t transport.Transport, err error) error {
	_ = send(ctx, t, MsgError, []byte(err.Error()))
	return err
}

// recv reads the next message and returns its type and body. A MsgError
// from the peer is converted into a *RemoteError.
func recv(ctx context.Context, t transport.Transport) (byte, []byte, error) {
	msg, err := t.Recv(ctx)
	if err != nil {
		return 0, nil, err
	}
	if len(msg) == 0 {
		return 0, nil, errors.New("protocol: empty frame")
	}
	if msg[0] == MsgError {
		return 0, nil, &RemoteError{Reason: string(msg[1:])}
	}
	return msg[0], msg[1:], nil
}

// recvExpect reads the next message and requires the given type.
func recvExpect(ctx context.Context, t transport.Transport, want byte) ([]byte, error) {
	typ, body, err := recv(ctx, t)
	if err != nil {
		return nil, err
	}
	if typ != want {
		return nil, fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrUnexpectedMessage, typ, want)
	}
	return body, nil
}

// appendBlobList encodes a u32-count list of u32-length-prefixed blobs.
func appendBlobList(dst []byte, blobs [][]byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(blobs)))
	for _, b := range blobs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

// parseBlobList decodes appendBlobList output.
func parseBlobList(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	// Each entry needs at least its 4-byte length prefix, so a count
	// beyond len(b)/4 is corrupt; never allocate from an unvalidated
	// peer-supplied count.
	if n > len(b)/4 {
		return nil, errors.New("protocol: blob list count exceeds payload")
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, io.ErrUnexpectedEOF
		}
		l := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return nil, io.ErrUnexpectedEOF
		}
		out = append(out, b[:l])
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, errors.New("protocol: trailing bytes in blob list")
	}
	return out, nil
}
