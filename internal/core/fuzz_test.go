package core

import (
	"testing"

	"robustset/internal/points"
)

// FuzzSketchUnmarshal feeds arbitrary bytes through the sketch wire
// parser and, on success, through a full reconciliation against a small
// local set. No input may panic, hang, or produce an out-of-universe
// point.
func FuzzSketchUnmarshal(f *testing.F) {
	u := points.Universe{Dim: 2, Delta: 1 << 8}
	alice := []points.Point{{1, 2}, {3, 4}, {100, 200}}
	bob := []points.Point{{1, 2}, {3, 5}, {90, 210}}
	sk, err := BuildSketch(testParams(u, 2, 5), alice)
	if err != nil {
		f.Fatal(err)
	}
	blob, _ := sk.MarshalBinary()
	f.Add(blob)
	f.Add([]byte("RSK1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var got Sketch
		if err := got.UnmarshalBinary(data); err != nil {
			return
		}
		res, err := Reconcile(&got, bob)
		if err != nil {
			return // failing loudly is fine; corrupting silently is not
		}
		for _, p := range res.SPrime {
			if !got.Params.Universe.Contains(p) {
				t.Fatalf("reconcile emitted out-of-universe point %v", p)
			}
		}
	})
}
