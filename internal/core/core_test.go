package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"robustset/internal/emd"
	"robustset/internal/points"
	"robustset/internal/workload"
)

func testParams(u points.Universe, k int, seed uint64) Params {
	return Params{Universe: u, Seed: seed, DiffBudget: k}
}

func genInstance(t *testing.T, cfg workload.Config) *workload.Instance {
	t.Helper()
	inst, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestParallelBuildByteIdentical pins the parallel sketch builder to the
// sequential one: every worker count must produce byte-identical wire
// encodings, and the Morton fast path must agree with the occupancy-map
// fallback (exercised via a universe whose dim × depth product exceeds
// the 64-bit Morton code).
func TestParallelBuildByteIdentical(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	inst := genInstance(t, workload.Config{
		N: 3000, Universe: u, Outliers: 10,
		Noise: workload.NoiseUniform, Scale: 3, Seed: 42,
	})
	// Duplicate some points so occurrence indexing is exercised.
	pts := append(append([]points.Point{}, inst.Alice...), inst.Alice[:50]...)
	p := testParams(u, 8, 99)
	want, err := BuildSketchParallel(p, pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 7} {
		got, err := BuildSketchParallel(p, pts, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotBytes, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if string(gotBytes) != string(wantBytes) {
			t.Errorf("workers=%d: sketch bytes diverge from sequential build", workers)
		}
	}
	// A maintainer seeded with the same points must hold the same bytes.
	m, err := NewMaintainerParallel(p, pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	mBytes, err := m.Sketch().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(mBytes) != string(wantBytes) {
		t.Error("maintainer-built sketch diverges from BuildSketch")
	}
}

// TestMortonAndMapPathsAgree forces the occupancy-map fallback by using
// a high-dimensional universe and checks it against itself across worker
// counts, then cross-checks the two fill paths on a universe where both
// are available by comparing per-level tables built through
// BuildLevelTable (map path) with the full build (Morton path).
func TestMortonAndMapPathsAgree(t *testing.T) {
	// dim 8 × (levels 9+1) = 80 bits > 64 → map fallback everywhere.
	u := points.Universe{Dim: 8, Delta: 1 << 9}
	inst := genInstance(t, workload.Config{
		N: 400, Universe: u, Outliers: 4,
		Noise: workload.NoiseUniform, Scale: 2, Seed: 5,
	})
	p := testParams(u, 4, 17)
	seq, err := BuildSketchParallel(p, inst.Alice, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildSketchParallel(p, inst.Alice, 4)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := seq.MarshalBinary()
	pb, _ := par.MarshalBinary()
	if string(sb) != string(pb) {
		t.Error("map-fallback parallel build diverges from sequential")
	}

	// Cross-path check: BuildLevelTable fills through the map path;
	// the full sketch uses the Morton path. Same level ⇒ same bytes.
	u2 := points.Universe{Dim: 2, Delta: 1 << 10}
	inst2 := genInstance(t, workload.Config{
		N: 1000, Universe: u2, Outliers: 5,
		Noise: workload.NoiseUniform, Scale: 2, Seed: 6,
	})
	p2, err := testParams(u2, 4, 23).normalized()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := BuildSketch(p2, inst2.Alice)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []int{0, 3, p2.MaxLevel} {
		lt, err := BuildLevelTable(p2, inst2.Alice, level, p2.TableCapacity)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := sk.Tables[level-p2.MinLevel].MarshalBinary()
		got, _ := lt.MarshalBinary()
		if string(got) != string(want) {
			t.Errorf("level %d: map-path table diverges from Morton-path table", level)
		}
	}
}

func TestParamsValidation(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	if _, err := BuildSketch(Params{Universe: u, DiffBudget: 0}, nil); err == nil {
		t.Error("zero diff budget accepted")
	}
	if _, err := BuildSketch(Params{Universe: points.Universe{Dim: 0, Delta: 4}, DiffBudget: 1}, nil); err == nil {
		t.Error("invalid universe accepted")
	}
	if _, err := BuildSketch(testParams(u, 4, 1).WithLevels(5, 2), nil); err == nil {
		t.Error("inverted level range accepted")
	}
	if _, err := BuildSketch(testParams(u, 4, 1).WithLevels(0, 99), nil); err == nil {
		t.Error("excessive max level accepted")
	}
	if _, err := BuildSketch(Params{Universe: u, DiffBudget: 1, HashCount: 1}, nil); err == nil {
		t.Error("hash count 1 accepted")
	}
	// Out-of-universe points rejected.
	if _, err := BuildSketch(testParams(u, 4, 1), []points.Point{{-1, 0}}); err == nil {
		t.Error("out-of-universe point accepted")
	}
}

func TestExactRegimeRecoversExactDifference(t *testing.T) {
	// With zero noise the finest level (width-1 cells, lossless) decodes,
	// and Bob ends with exactly Alice's multiset.
	u := points.Universe{Dim: 2, Delta: 1 << 16}
	for _, k := range []int{1, 5, 20} {
		inst := genInstance(t, workload.Config{
			N: 500, Universe: u, Outliers: k, Noise: workload.NoiseNone, Seed: uint64(k),
		})
		sk, err := BuildSketch(testParams(u, k, 42), inst.Alice)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Reconcile(sk, inst.Bob)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Level != u.Levels() {
			t.Errorf("k=%d: decoded at level %d, want finest %d", k, res.Level, u.Levels())
		}
		if !points.EqualMultisets(res.SPrime, inst.Alice) {
			t.Errorf("k=%d: S'_B != S_A in exact regime", k)
		}
		if len(res.Added) != k || len(res.Removed) != k {
			t.Errorf("k=%d: added %d removed %d, want %d each", k, len(res.Added), len(res.Removed), k)
		}
	}
}

func TestIdenticalSetsNoOp(t *testing.T) {
	u := points.Universe{Dim: 3, Delta: 1 << 12}
	inst := genInstance(t, workload.Config{N: 300, Universe: u, Seed: 7})
	sk, _ := BuildSketch(testParams(u, 2, 1), inst.Bob)
	res, err := Reconcile(sk, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiffSize() != 0 {
		t.Errorf("identical sets decoded %d differences", res.DiffSize())
	}
	if !points.EqualMultisets(res.SPrime, inst.Bob) {
		t.Error("S'_B changed for identical sets")
	}
	if res.Level != u.Levels() {
		t.Errorf("identical sets should decode at the finest level, got %d", res.Level)
	}
}

func TestNoisyReconciliationImprovesEMD(t *testing.T) {
	// The headline behaviour: under noise, Bob's reconciled set is much
	// closer to Alice's than his original set was, and the size invariant
	// |S'_B| = n holds.
	u := points.Universe{Dim: 2, Delta: 1 << 16}
	inst := genInstance(t, workload.Config{
		N: 160, Universe: u, Outliers: 6,
		Noise: workload.NoiseUniform, Scale: 3, Seed: 99,
	})
	sk, err := BuildSketch(testParams(u, 6, 1234), inst.Alice)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reconcile(sk, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SPrime) != len(inst.Bob) {
		t.Fatalf("|S'_B| = %d, want %d", len(res.SPrime), len(inst.Bob))
	}
	for _, p := range res.SPrime {
		if !u.Contains(p) {
			t.Fatalf("reconciled point %v outside universe", p)
		}
	}
	before, err := emd.Exact(inst.Alice, inst.Bob, points.L1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := emd.Exact(inst.Alice, res.SPrime, points.L1)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("reconciliation did not improve EMD: before %v, after %v", before, after)
	}
	// Outliers are huge in a 2^16 universe; the residual should be within
	// a moderate factor of the noise floor rather than outlier-sized.
	if after > before/4 {
		t.Errorf("EMD only improved from %v to %v; expected at least 4×", before, after)
	}
}

func TestApproximationFactorAgainstEMDk(t *testing.T) {
	// EMD(S_A, S'_B) should be within a dimension-dependent constant of
	// EMD_k(S_A, S_B). The paper proves O(d) in expectation; we allow a
	// generous empirical band (d·logn-ish) to keep the test stable.
	u := points.Universe{Dim: 2, Delta: 1 << 14}
	k := 4
	worst := 0.0
	for seed := uint64(0); seed < 5; seed++ {
		inst := genInstance(t, workload.Config{
			N: 100, Universe: u, Outliers: k,
			Noise: workload.NoiseUniform, Scale: 2, Seed: seed,
		})
		sk, _ := BuildSketch(testParams(u, k, seed+100), inst.Alice)
		res, err := Reconcile(sk, inst.Bob)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after, _ := emd.Exact(inst.Alice, res.SPrime, points.L1)
		base, _ := emd.Partial(inst.Alice, inst.Bob, points.L1, k)
		if base == 0 {
			base = 1
		}
		if ratio := after / base; ratio > worst {
			worst = ratio
		}
	}
	if worst > 60 {
		t.Errorf("worst EMD/EMD_k ratio %.1f implausibly high for d=2", worst)
	}
}

func TestLevelSelectionTracksNoise(t *testing.T) {
	// Higher noise must force decoding at coarser (smaller) levels.
	u := points.Universe{Dim: 2, Delta: 1 << 16}
	level := func(scale float64) int {
		inst := genInstance(t, workload.Config{
			N: 400, Universe: u, Outliers: 4,
			Noise: workload.NoiseUniform, Scale: scale, Seed: uint64(scale * 10),
		})
		sk, _ := BuildSketch(testParams(u, 4, 5), inst.Alice)
		res, err := Reconcile(sk, inst.Bob)
		if err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
		return res.Level
	}
	lo, hi := level(1), level(512)
	if !(hi < lo) {
		t.Errorf("level at high noise (%d) not coarser than at low noise (%d)", hi, lo)
	}
}

func TestUnequalSizes(t *testing.T) {
	// The protocol tolerates |S_A| != |S_B|: the repaired size equals
	// Alice's count.
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	inst := genInstance(t, workload.Config{N: 200, Universe: u, Seed: 3})
	alice := inst.Alice[:180]
	sk, _ := BuildSketch(testParams(u, 25, 9), alice)
	res, err := Reconcile(sk, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SPrime) != len(alice) {
		t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(alice))
	}
}

func TestDuplicatePointsMultisetSemantics(t *testing.T) {
	// Heavy duplication: the occurrence-index encoding must keep counts
	// straight. Alice has the same point 50×, Bob 47×, plus distinct junk.
	u := points.Universe{Dim: 1, Delta: 1 << 10}
	dup := points.Point{500}
	var alice, bob []points.Point
	for i := 0; i < 50; i++ {
		alice = append(alice, dup.Clone())
	}
	for i := 0; i < 47; i++ {
		bob = append(bob, dup.Clone())
	}
	for i := int64(0); i < 20; i++ {
		alice = append(alice, points.Point{i})
		bob = append(bob, points.Point{i})
	}
	sk, err := BuildSketch(testParams(u, 6, 11), alice)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reconcile(sk, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !points.EqualMultisets(res.SPrime, alice) {
		t.Error("duplicate-heavy multiset not reconciled exactly in exact regime")
	}
	if len(res.Added) != 3 || len(res.Removed) != 0 {
		t.Errorf("added %d removed %d, want 3 and 0", len(res.Added), len(res.Removed))
	}
}

func TestOverBudgetFailsLoudly(t *testing.T) {
	// Differences an order of magnitude past the budget at every level:
	// Reconcile must return ErrNoDecodableLevel, not garbage. Disjoint
	// uniform sets differ everywhere, including level 1; restricting the
	// sketch to fine levels removes the coarse safety net.
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	rng := rand.New(rand.NewPCG(5, 5))
	mk := func() []points.Point {
		s := make([]points.Point, 400)
		for i := range s {
			s[i] = points.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
		}
		return s
	}
	p := testParams(u, 2, 13).WithLevels(6, u.Levels())
	sk, err := BuildSketch(p, mk())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Reconcile(sk, mk())
	if !errors.Is(err, ErrNoDecodableLevel) {
		t.Fatalf("want ErrNoDecodableLevel, got %v", err)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 14}
	inst := genInstance(t, workload.Config{
		N: 200, Universe: u, Outliers: 3, Noise: workload.NoiseUniform, Scale: 2, Seed: 21,
	})
	run := func() *Result {
		sk, _ := BuildSketch(testParams(u, 3, 77), inst.Alice)
		res, err := Reconcile(sk, inst.Bob)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Level != b.Level || !points.EqualMultisets(a.SPrime, b.SPrime) {
		t.Error("protocol not deterministic for fixed seed")
	}
}

func TestSketchMarshalRoundtrip(t *testing.T) {
	u := points.Universe{Dim: 3, Delta: 1 << 10}
	inst := genInstance(t, workload.Config{N: 150, Universe: u, Outliers: 4, Seed: 31})
	sk, _ := BuildSketch(testParams(u, 4, 55), inst.Alice)
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != sk.WireSize() {
		t.Errorf("wire size %d != declared %d", len(blob), sk.WireSize())
	}
	var got Sketch
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	res, err := Reconcile(&got, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if !points.EqualMultisets(res.SPrime, inst.Alice) {
		t.Error("reconciliation via unmarshalled sketch failed")
	}
}

func TestSketchUnmarshalRejectsCorrupt(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 8}
	sk, _ := BuildSketch(testParams(u, 2, 1), []points.Point{{1, 2}, {3, 4}})
	good, _ := sk.MarshalBinary()
	var got Sketch
	cases := map[string][]byte{
		"short":     good[:10],
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)-2],
		"trailing":  append(append([]byte{}, good...), 9),
	}
	for name, blob := range cases {
		if err := got.UnmarshalBinary(blob); err == nil {
			t.Errorf("%s: corrupt sketch accepted", name)
		}
	}
	// Corrupting the embedded seed must be detected via config mismatch
	// (the tables' seeds no longer match the sketch parameters).
	bad := append([]byte{}, good...)
	bad[14] ^= 0xff
	if err := got.UnmarshalBinary(bad); err == nil {
		t.Error("seed-corrupted sketch accepted")
	}
}

func TestFixedLevelReconcile(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 14}
	inst := genInstance(t, workload.Config{
		N: 300, Universe: u, Outliers: 5, Noise: workload.NoiseUniform, Scale: 4, Seed: 61,
	})
	p := testParams(u, 5, 7)
	// Choose a level coarse enough that noise cancels: width ≥ 64·noise.
	level := u.Levels() - 10
	alice, err := BuildLevelTable(p, inst.Alice, level, 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReconcileLevel(p, alice, inst.Bob, level)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != level {
		t.Errorf("level = %d, want %d", res.Level, level)
	}
	if len(res.SPrime) != len(inst.Bob) {
		t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(inst.Bob))
	}
}

func TestReconcileLevelFailsWhenOverloaded(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 14}
	inst := genInstance(t, workload.Config{
		N: 300, Universe: u, Outliers: 5, Noise: workload.NoiseUniform, Scale: 4, Seed: 61,
	})
	p := testParams(u, 5, 7)
	// The finest level separates nearly every pair; a 16-key table must fail.
	alice, err := BuildLevelTable(p, inst.Alice, u.Levels(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconcileLevel(p, alice, inst.Bob, u.Levels()); err == nil {
		t.Error("overloaded single-level reconcile succeeded")
	}
}

func TestLevelEstimatorsAndChooseLevel(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 14}
	inst := genInstance(t, workload.Config{
		N: 500, Universe: u, Outliers: 8, Noise: workload.NoiseUniform, Scale: 8, Seed: 71,
	})
	p := testParams(u, 8, 19)
	ae, err := LevelEstimators(p, inst.Alice, 128)
	if err != nil {
		t.Fatal(err)
	}
	be, err := LevelEstimators(p, inst.Bob, 128)
	if err != nil {
		t.Fatal(err)
	}
	level, est, err := ChooseLevel(p, ae, be, 64)
	if err != nil {
		t.Fatal(err)
	}
	if level < 0 || level > u.Levels() {
		t.Fatalf("chosen level %d out of range", level)
	}
	// The chosen level must actually reconcile with a table sized from
	// the estimate.
	capacity := int(est*1.5) + 16
	alice, err := BuildLevelTable(p, inst.Alice, level, capacity)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReconcileLevel(p, alice, inst.Bob, level)
	if err != nil {
		t.Fatalf("estimate-chosen level %d (est %.0f, cap %d) failed: %v", level, est, capacity, err)
	}
	if len(res.SPrime) != len(inst.Bob) {
		t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(inst.Bob))
	}
	// Estimator count mismatch is rejected.
	if _, _, err := ChooseLevel(p, ae[:3], be, 64); err == nil {
		t.Error("estimator count mismatch accepted")
	}
}

func TestKeyRoundtrip(t *testing.T) {
	u := points.Universe{Dim: 3, Delta: 1 << 8}
	p, _ := testParams(u, 1, 1).normalized()
	g, err := gridFor(p)
	if err != nil {
		t.Fatal(err)
	}
	cell := g.Cell(4, points.Point{10, 200, 77})
	key := appendKey(nil, g, cell, 123456)
	if len(key) != KeyLen(3) {
		t.Fatalf("key length %d != %d", len(key), KeyLen(3))
	}
	c2, occ, err := splitKey(g, key)
	if err != nil || !c2.Equal(cell) || occ != 123456 {
		t.Fatalf("key roundtrip: %v %d %v", c2, occ, err)
	}
	if _, _, err := splitKey(g, key[:5]); err == nil {
		t.Error("short key accepted")
	}
}

func TestOutcomesRecorded(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	inst := genInstance(t, workload.Config{
		N: 300, Universe: u, Outliers: 3, Noise: workload.NoiseUniform, Scale: 16, Seed: 81,
	})
	sk, _ := BuildSketch(testParams(u, 3, 3), inst.Alice)
	res, err := Reconcile(sk, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("no outcomes recorded")
	}
	last := res.Outcomes[len(res.Outcomes)-1]
	if !last.Decoded || last.Level != res.Level {
		t.Errorf("last outcome %+v inconsistent with result level %d", last, res.Level)
	}
	for _, o := range res.Outcomes[:len(res.Outcomes)-1] {
		if o.Decoded {
			t.Errorf("non-final outcome %+v marked decoded", o)
		}
	}
}
