// Package core implements the robust set reconciliation protocol of
// "Robust Set Reconciliation" (SIGMOD 2014): a one-way protocol that lets
// Bob transform his point multiset S_B into a multiset S'_B close to
// Alice's S_A in Earth Mover's Distance, with communication proportional
// to the number of genuine differences k rather than to n.
//
// # Construction
//
// Both parties share a seed (public coins) that fixes a randomly shifted
// hierarchical grid over the universe [Δ]^d and a family of IBLT hash
// functions. For every grid level ℓ, Alice rounds each of her points to
// its grid cell and inserts the key (cell coordinates, occurrence index)
// into a level-ℓ IBLT with O(k) cells; the occurrence index — "this is my
// j-th point in this cell" — gives the IBLT exact multiset semantics, so
// after Bob subtracts his identically built table, the level-ℓ sketch
// holds exactly Σ_c |a_c − b_c| keys, where a_c, b_c are the parties'
// cell occupancies.
//
// Bob scans levels from finest to coarsest and decodes the first table
// whose peeling succeeds: at fine levels measurement noise separates
// nearly every corresponding pair (too many differences, decode fails);
// at coarse levels noisy pairs share cells and cancel, leaving roughly
// the k true differences. At the chosen level Bob repairs his multiset:
// he deletes his own points named by Bob-only keys and adds the cell
// centers of Alice-only keys. The random shift makes the probability of
// a pair at distance x surviving to level ℓ proportional to x/w_ℓ, which
// yields the paper's O(d)·EMD_k(S_A,S_B) expected accuracy.
package core

import (
	"errors"
	"fmt"

	"robustset/internal/grid"
	"robustset/internal/hashutil"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/sketch"
)

// Params is the shared configuration of a reconciliation. Both parties
// must use identical Params (they are carried in the sketch wire format,
// so in practice Bob adopts whatever Alice sent).
type Params struct {
	// Universe is the point domain [Δ]^d.
	Universe points.Universe
	// Seed is the public-coins seed fixing the grid shift and all hash
	// functions.
	Seed uint64
	// DiffBudget is k: the number of genuine differences the sketch is
	// provisioned for. Each level's IBLT is sized to decode about
	// 2·DiffBudget keys (k Alice-only plus k Bob-only).
	DiffBudget int
	// HashCount is the IBLT hash count q. 0 means the default (4).
	HashCount int
	// MinLevel and MaxLevel bound the grid levels included in the sketch.
	// Zero values mean the full hierarchy 0..log2(Δ). A party that knows
	// the noise scale can clamp MaxLevel to save communication.
	MinLevel, MaxLevel int
	// TableCapacity overrides the per-level IBLT key capacity. 0 means
	// the default 2·DiffBudget (plus a small floor).
	TableCapacity int
	// levelsSet records whether MaxLevel was explicitly provided.
	levelsSet bool
}

// DefaultHashCount is the IBLT hash count used when Params.HashCount is 0.
const DefaultHashCount = 4

// WithLevels returns a copy of p restricted to grid levels [lo, hi].
func (p Params) WithLevels(lo, hi int) Params {
	p.MinLevel, p.MaxLevel, p.levelsSet = lo, hi, true
	return p
}

// Hard parameter ceilings. They are far beyond any sensible deployment
// and exist so that wire-derived Params can never drive pathological
// allocations (a hostile sketch header is rejected before any table is
// built).
const (
	// MaxDim bounds the universe dimension.
	MaxDim = 512
	// MaxDiffBudget bounds DiffBudget and TableCapacity.
	MaxDiffBudget = 1 << 24
)

// normalized validates p and fills defaults.
func (p Params) normalized() (Params, error) {
	if err := p.Universe.Validate(); err != nil {
		return p, err
	}
	if p.Universe.Dim > MaxDim {
		return p, fmt.Errorf("core: dimension %d exceeds limit %d", p.Universe.Dim, MaxDim)
	}
	if p.DiffBudget < 1 {
		return p, fmt.Errorf("core: diff budget %d < 1", p.DiffBudget)
	}
	if p.DiffBudget > MaxDiffBudget {
		return p, fmt.Errorf("core: diff budget %d exceeds limit %d", p.DiffBudget, MaxDiffBudget)
	}
	if p.TableCapacity < 0 || p.TableCapacity > MaxDiffBudget {
		return p, fmt.Errorf("core: table capacity %d outside [0,%d]", p.TableCapacity, MaxDiffBudget)
	}
	if p.HashCount == 0 {
		p.HashCount = DefaultHashCount
	}
	if p.HashCount < 2 || p.HashCount > 16 {
		return p, fmt.Errorf("core: hash count %d outside [2,16]", p.HashCount)
	}
	maxLevel := p.Universe.Levels()
	if !p.levelsSet && p.MaxLevel == 0 && p.MinLevel == 0 {
		p.MaxLevel = maxLevel
	}
	if p.MinLevel < 0 || p.MaxLevel > maxLevel || p.MinLevel > p.MaxLevel {
		return p, fmt.Errorf("core: level range [%d,%d] invalid for universe with %d levels", p.MinLevel, p.MaxLevel, maxLevel)
	}
	if p.TableCapacity == 0 {
		p.TableCapacity = 2 * p.DiffBudget
	}
	// Floor the capacity: very small IBLTs stall with non-negligible
	// probability, and a stall at the finest (lossless) level silently
	// degrades an exact-regime reconciliation to a rounded one.
	if p.TableCapacity < 8 {
		p.TableCapacity = 8
	}
	return p, nil
}

// KeyLen returns the IBLT key length for dimension d: 8 bytes per cell
// coordinate plus 4 bytes of occurrence index.
func KeyLen(d int) int { return 8*d + 4 }

// gridFor builds the shared grid for the params.
func gridFor(p Params) (*grid.Grid, error) {
	return grid.New(p.Universe, hashutil.DeriveSeed(p.Seed, "core/grid"))
}

// levelTable constructs the empty IBLT for one level under p.
func levelTable(p Params, level, capacity int) (*iblt.Table, error) {
	return iblt.New(iblt.Config{
		Cells:     iblt.RecommendedCells(capacity, p.HashCount),
		HashCount: p.HashCount,
		KeyLen:    KeyLen(p.Universe.Dim),
		Seed:      hashutil.DeriveSeedN(p.Seed, "core/level", level),
	})
}

// appendKey encodes the (cell, occurrence) IBLT key.
func appendKey(dst []byte, g *grid.Grid, c grid.Cell, occ uint32) []byte {
	dst = g.EncodeCell(dst, c)
	dst = append(dst, byte(occ), byte(occ>>8), byte(occ>>16), byte(occ>>24))
	return dst
}

// splitKey decodes an IBLT key back into cell and occurrence.
func splitKey(g *grid.Grid, key []byte) (grid.Cell, uint32, error) {
	cs := g.EncodedCellSize()
	if len(key) != cs+4 {
		return nil, 0, fmt.Errorf("core: key length %d, want %d", len(key), cs+4)
	}
	c, err := g.DecodeCell(key[:cs])
	if err != nil {
		return nil, 0, err
	}
	occ := uint32(key[cs]) | uint32(key[cs+1])<<8 | uint32(key[cs+2])<<16 | uint32(key[cs+3])<<24
	return c, occ, nil
}

// fillLevel inserts every point's (cell, occurrence) key for one level.
func fillLevel(t *iblt.Table, g *grid.Grid, level int, pts []points.Point) {
	occ := make(map[string]uint32, len(pts))
	buf := make([]byte, 0, KeyLen(g.Universe().Dim))
	cellBuf := make([]byte, 0, g.EncodedCellSize())
	for _, p := range pts {
		cell := g.Cell(level, p)
		cellBuf = g.EncodeCell(cellBuf[:0], cell)
		o := occ[string(cellBuf)]
		occ[string(cellBuf)] = o + 1
		buf = appendKey(buf[:0], g, cell, o)
		t.Insert(buf)
	}
}

// Sketch is Alice's transmissible summary: one IBLT per grid level in
// [Params.MinLevel, Params.MaxLevel].
type Sketch struct {
	Params Params
	// Count is the number of points summarized (|S_A|), carried for
	// diagnostics and for the repair-size invariant check.
	Count int
	// Tables holds one IBLT per level, indexed by level−MinLevel.
	Tables []*iblt.Table
}

// BuildSketch summarizes pts under p. This is Alice's encoder; it is also
// invoked by Bob to build the identical structure he subtracts.
func BuildSketch(p Params, pts []points.Point) (*Sketch, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	s := &Sketch{Params: p, Count: len(pts)}
	for l := p.MinLevel; l <= p.MaxLevel; l++ {
		t, err := levelTable(p, l, p.TableCapacity)
		if err != nil {
			return nil, err
		}
		fillLevel(t, g, l, pts)
		s.Tables = append(s.Tables, t)
	}
	return s, nil
}

// WireSize returns the total marshalled size of the sketch in bytes.
func (s *Sketch) WireSize() int {
	n := sketchHeaderSize
	for _, t := range s.Tables {
		n += 4 + t.WireSize()
	}
	return n
}

// LevelOutcome records what happened at one level during Reconcile's scan.
type LevelOutcome struct {
	Level    int
	Decoded  bool
	DiffSize int // decoded keys (valid only when Decoded)
}

// Result is the outcome of a reconciliation on Bob's side.
type Result struct {
	// SPrime is Bob's reconciled multiset S'_B.
	SPrime []points.Point
	// Params are the normalized parameters the reconciliation ran under
	// (for the one-shot protocol, the ones carried by Alice's sketch).
	Params Params
	// Level is the finest grid level whose sketch decoded.
	Level int
	// CellWidth is the grid cell width at Level.
	CellWidth int64
	// Added holds the cell-center points inserted into S'_B (one per
	// Alice-only key).
	Added []points.Point
	// Removed holds Bob's own points deleted from S'_B (one per Bob-only
	// key).
	Removed []points.Point
	// Outcomes records the decode attempt at every scanned level, finest
	// first, ending with the successful one.
	Outcomes []LevelOutcome
}

// DiffSize returns the total number of decoded difference keys.
func (r *Result) DiffSize() int { return len(r.Added) + len(r.Removed) }

// ErrNoDecodableLevel is returned when no level of the sketch decodes —
// the difference exceeded the sketch's budget at every resolution. The
// caller should retry with a larger DiffBudget (the estimate-first
// protocol automates this).
var ErrNoDecodableLevel = errors.New("core: no level of the sketch decoded; increase DiffBudget")

// ErrInconsistentSketch is returned when a decoded difference contradicts
// Bob's own data (e.g. a Bob-only key whose cell Bob never occupied),
// which indicates corruption or mismatched parameters.
var ErrInconsistentSketch = errors.New("core: decoded difference inconsistent with local set")

// Reconcile is Bob's side of the one-shot protocol: given Alice's sketch
// and his own points, it returns S'_B ≈ S_A. Bob's points must lie in the
// sketch's universe.
func Reconcile(s *Sketch, bobPts []points.Point) (*Result, error) {
	p, err := s.Params.normalized()
	if err != nil {
		return nil, err
	}
	if len(s.Tables) != p.MaxLevel-p.MinLevel+1 {
		return nil, fmt.Errorf("core: sketch has %d tables for level range [%d,%d]", len(s.Tables), p.MinLevel, p.MaxLevel)
	}
	if err := p.Universe.CheckSet(bobPts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	mine, err := BuildSketch(p, bobPts)
	if err != nil {
		return nil, err
	}
	res := &Result{Params: p}
	for l := p.MaxLevel; l >= p.MinLevel; l-- {
		idx := l - p.MinLevel
		t := s.Tables[idx].Clone()
		if err := t.Sub(mine.Tables[idx]); err != nil {
			return nil, fmt.Errorf("core: level %d: %w", l, err)
		}
		diff, derr := t.Decode()
		if derr != nil {
			res.Outcomes = append(res.Outcomes, LevelOutcome{Level: l})
			continue
		}
		res.Outcomes = append(res.Outcomes, LevelOutcome{Level: l, Decoded: true, DiffSize: diff.Size()})
		if err := repair(res, g, l, diff, bobPts); err != nil {
			return nil, err
		}
		return res, nil
	}
	return nil, ErrNoDecodableLevel
}

// repair applies a decoded level difference to Bob's multiset.
func repair(res *Result, g *grid.Grid, level int, diff *iblt.Diff, bobPts []points.Point) error {
	res.Level = level
	res.CellWidth = g.CellWidth(level)
	// Recompute Bob's occupancy at this level so Bob-only keys (cell,occ)
	// resolve to concrete points of his.
	occupants := make(map[string][]int, len(bobPts)) // cell key → point indices, in slice order
	cellBuf := make([]byte, 0, g.EncodedCellSize())
	for i, p := range bobPts {
		cellBuf = g.EncodeCell(cellBuf[:0], g.Cell(level, p))
		occupants[string(cellBuf)] = append(occupants[string(cellBuf)], i)
	}
	remove := make(map[int]bool, len(diff.Neg))
	for _, key := range diff.Neg {
		cell, occ, err := splitKey(g, key)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInconsistentSketch, err)
		}
		cellBuf = g.EncodeCell(cellBuf[:0], cell)
		ids := occupants[string(cellBuf)]
		if int(occ) >= len(ids) {
			return fmt.Errorf("%w: bob-only key names occurrence %d of a cell with %d local points", ErrInconsistentSketch, occ, len(ids))
		}
		idx := ids[occ]
		if remove[idx] {
			return fmt.Errorf("%w: point %d removed twice", ErrInconsistentSketch, idx)
		}
		remove[idx] = true
		res.Removed = append(res.Removed, bobPts[idx])
	}
	res.SPrime = make([]points.Point, 0, len(bobPts)-len(remove)+len(diff.Pos))
	for i, p := range bobPts {
		if !remove[i] {
			res.SPrime = append(res.SPrime, p.Clone())
		}
	}
	for _, key := range diff.Pos {
		cell, _, err := splitKey(g, key)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInconsistentSketch, err)
		}
		center := g.Center(level, cell)
		res.Added = append(res.Added, center)
		res.SPrime = append(res.SPrime, center)
	}
	return nil
}

// BuildLevelTable builds the single-level IBLT used by the estimate-first
// protocol, with an explicit key capacity.
func BuildLevelTable(p Params, pts []points.Point, level, capacity int) (*iblt.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if level < 0 || level > p.Universe.Levels() {
		return nil, fmt.Errorf("core: level %d outside [0,%d]", level, p.Universe.Levels())
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	t, err := levelTable(p, level, capacity)
	if err != nil {
		return nil, err
	}
	fillLevel(t, g, level, pts)
	return t, nil
}

// ReconcileLevel is the single-level analogue of Reconcile, used by the
// estimate-first protocol once a level has been negotiated: it subtracts
// Bob's identically sized table and repairs at exactly that level.
func ReconcileLevel(p Params, aliceTable *iblt.Table, bobPts []points.Point, level int) (*Result, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(bobPts); err != nil {
		return nil, err
	}
	mine, err := iblt.New(aliceTable.Config())
	if err != nil {
		return nil, err
	}
	fillLevel(mine, g, level, bobPts)
	t := aliceTable.Clone()
	if err := t.Sub(mine); err != nil {
		return nil, err
	}
	diff, err := t.Decode()
	if err != nil {
		return nil, fmt.Errorf("core: level %d table did not decode: %w", level, err)
	}
	res := &Result{Params: p, Outcomes: []LevelOutcome{{Level: level, Decoded: true, DiffSize: diff.Size()}}}
	if err := repair(res, g, level, diff, bobPts); err != nil {
		return nil, err
	}
	return res, nil
}

// LevelEstimators builds one bottom-k difference estimator per level over
// the same (cell, occurrence) keys the IBLTs would hold. The estimate-first
// protocol sends these instead of full tables in its first round.
func LevelEstimators(p Params, pts []points.Point, k int) ([]*sketch.BottomK, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	ests := make([]*sketch.BottomK, 0, p.MaxLevel-p.MinLevel+1)
	buf := make([]byte, 0, KeyLen(p.Universe.Dim))
	cellBuf := make([]byte, 0, g.EncodedCellSize())
	for l := p.MinLevel; l <= p.MaxLevel; l++ {
		e, err := sketch.NewBottomK(k, hashutil.DeriveSeedN(p.Seed, "core/est", l))
		if err != nil {
			return nil, err
		}
		occ := make(map[string]uint32, len(pts))
		for _, pt := range pts {
			cell := g.Cell(l, pt)
			cellBuf = g.EncodeCell(cellBuf[:0], cell)
			o := occ[string(cellBuf)]
			occ[string(cellBuf)] = o + 1
			buf = appendKey(buf[:0], g, cell, o)
			e.Add(buf)
		}
		ests = append(ests, e)
	}
	return ests, nil
}

// ChooseLevel picks the finest level whose estimated difference fits the
// given key budget, given Alice's and Bob's level estimators. It returns
// the level and the estimated difference size at that level (already
// padded for estimator resolution — size tables from it directly). If no
// level fits, it returns the coarsest level with its estimate.
//
// A bottom-k estimator resolves the difference only to about one
// quantization step of (|A|+|B|)/k keys, so raw estimates near zero are
// unreliable for large sets; half a step is added before both the budget
// comparison and the returned estimate. Callers that need fine level
// selection on large sets should raise the estimator size accordingly
// (k ≈ n/32 makes the step ~64 keys).
func ChooseLevel(p Params, alice, bob []*sketch.BottomK, budget int) (level int, estimate float64, err error) {
	p, err = p.normalized()
	if err != nil {
		return 0, 0, err
	}
	if len(alice) != len(bob) || len(alice) != p.MaxLevel-p.MinLevel+1 {
		return 0, 0, fmt.Errorf("core: estimator count mismatch (%d alice, %d bob, want %d)", len(alice), len(bob), p.MaxLevel-p.MinLevel+1)
	}
	for i := len(alice) - 1; i >= 0; i-- {
		est, err := sketch.EstimateDiff(alice[i], bob[i])
		if err != nil {
			return 0, 0, err
		}
		step := float64(alice[i].Count()+bob[i].Count()) / float64(alice[i].K())
		est += step / 2
		// A level is affordable if its padded estimate fits the budget;
		// when the budget is below the estimator's own resolution, one
		// step is the honest acceptance bar (the caller provisions at
		// least that much capacity anyway, and rejecting everything the
		// estimator cannot resolve would drive selection uselessly
		// coarse).
		limit := float64(budget)
		if step > limit {
			limit = step
		}
		if est <= limit || i == 0 {
			return p.MinLevel + i, est, nil
		}
	}
	return p.MinLevel, 0, nil // unreachable; loop always returns at i==0
}
