// Package core implements the robust set reconciliation protocol of
// "Robust Set Reconciliation" (SIGMOD 2014): a one-way protocol that lets
// Bob transform his point multiset S_B into a multiset S'_B close to
// Alice's S_A in Earth Mover's Distance, with communication proportional
// to the number of genuine differences k rather than to n.
//
// # Construction
//
// Both parties share a seed (public coins) that fixes a randomly shifted
// hierarchical grid over the universe [Δ]^d and a family of IBLT hash
// functions. For every grid level ℓ, Alice rounds each of her points to
// its grid cell and inserts the key (cell coordinates, occurrence index)
// into a level-ℓ IBLT with O(k) cells; the occurrence index — "this is my
// j-th point in this cell" — gives the IBLT exact multiset semantics, so
// after Bob subtracts his identically built table, the level-ℓ sketch
// holds exactly Σ_c |a_c − b_c| keys, where a_c, b_c are the parties'
// cell occupancies.
//
// Bob scans levels from finest to coarsest and decodes the first table
// whose peeling succeeds: at fine levels measurement noise separates
// nearly every corresponding pair (too many differences, decode fails);
// at coarse levels noisy pairs share cells and cancel, leaving roughly
// the k true differences. At the chosen level Bob repairs his multiset:
// he deletes his own points named by Bob-only keys and adds the cell
// centers of Alice-only keys. The random shift makes the probability of
// a pair at distance x surviving to level ℓ proportional to x/w_ℓ, which
// yields the paper's O(d)·EMD_k(S_A,S_B) expected accuracy.
package core

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"robustset/internal/grid"
	"robustset/internal/hashutil"
	"robustset/internal/iblt"
	"robustset/internal/points"
	"robustset/internal/sketch"
)

// Params is the shared configuration of a reconciliation. Both parties
// must use identical Params (they are carried in the sketch wire format,
// so in practice Bob adopts whatever Alice sent).
type Params struct {
	// Universe is the point domain [Δ]^d.
	Universe points.Universe
	// Seed is the public-coins seed fixing the grid shift and all hash
	// functions.
	Seed uint64
	// DiffBudget is k: the number of genuine differences the sketch is
	// provisioned for. Each level's IBLT is sized to decode about
	// 2·DiffBudget keys (k Alice-only plus k Bob-only).
	DiffBudget int
	// HashCount is the IBLT hash count q. 0 means the default (4).
	HashCount int
	// MinLevel and MaxLevel bound the grid levels included in the sketch.
	// Zero values mean the full hierarchy 0..log2(Δ). A party that knows
	// the noise scale can clamp MaxLevel to save communication.
	MinLevel, MaxLevel int
	// TableCapacity overrides the per-level IBLT key capacity. 0 means
	// the default 2·DiffBudget (plus a small floor).
	TableCapacity int
	// levelsSet records whether MaxLevel was explicitly provided.
	levelsSet bool
}

// DefaultHashCount is the IBLT hash count used when Params.HashCount is 0.
const DefaultHashCount = 4

// WithLevels returns a copy of p restricted to grid levels [lo, hi].
func (p Params) WithLevels(lo, hi int) Params {
	p.MinLevel, p.MaxLevel, p.levelsSet = lo, hi, true
	return p
}

// Hard parameter ceilings. They are far beyond any sensible deployment
// and exist so that wire-derived Params can never drive pathological
// allocations (a hostile sketch header is rejected before any table is
// built).
const (
	// MaxDim bounds the universe dimension.
	MaxDim = 512
	// MaxDiffBudget bounds DiffBudget and TableCapacity.
	MaxDiffBudget = 1 << 24
)

// normalized validates p and fills defaults.
func (p Params) normalized() (Params, error) {
	if err := p.Universe.Validate(); err != nil {
		return p, err
	}
	if p.Universe.Dim > MaxDim {
		return p, fmt.Errorf("core: dimension %d exceeds limit %d", p.Universe.Dim, MaxDim)
	}
	if p.DiffBudget < 1 {
		return p, fmt.Errorf("core: diff budget %d < 1", p.DiffBudget)
	}
	if p.DiffBudget > MaxDiffBudget {
		return p, fmt.Errorf("core: diff budget %d exceeds limit %d", p.DiffBudget, MaxDiffBudget)
	}
	if p.TableCapacity < 0 || p.TableCapacity > MaxDiffBudget {
		return p, fmt.Errorf("core: table capacity %d outside [0,%d]", p.TableCapacity, MaxDiffBudget)
	}
	if p.HashCount == 0 {
		p.HashCount = DefaultHashCount
	}
	if p.HashCount < 2 || p.HashCount > 16 {
		return p, fmt.Errorf("core: hash count %d outside [2,16]", p.HashCount)
	}
	maxLevel := p.Universe.Levels()
	if !p.levelsSet && p.MaxLevel == 0 && p.MinLevel == 0 {
		p.MaxLevel = maxLevel
	}
	if p.MinLevel < 0 || p.MaxLevel > maxLevel || p.MinLevel > p.MaxLevel {
		return p, fmt.Errorf("core: level range [%d,%d] invalid for universe with %d levels", p.MinLevel, p.MaxLevel, maxLevel)
	}
	if p.TableCapacity == 0 {
		p.TableCapacity = 2 * p.DiffBudget
	}
	// Floor the capacity: very small IBLTs stall with non-negligible
	// probability, and a stall at the finest (lossless) level silently
	// degrades an exact-regime reconciliation to a rounded one.
	if p.TableCapacity < 8 {
		p.TableCapacity = 8
	}
	return p, nil
}

// KeyLen returns the IBLT key length for dimension d: 8 bytes per cell
// coordinate plus 4 bytes of occurrence index.
func KeyLen(d int) int { return 8*d + 4 }

// gridFor builds the shared grid for the params.
func gridFor(p Params) (*grid.Grid, error) {
	return grid.New(p.Universe, hashutil.DeriveSeed(p.Seed, "core/grid"))
}

// levelTable constructs the empty IBLT for one level under p.
func levelTable(p Params, level, capacity int) (*iblt.Table, error) {
	return iblt.New(levelConfig(p, level, capacity))
}

// levelConfig is the (normalized) table configuration levelTable builds
// with — computable without constructing a table, which the sketch
// decoder uses to validate deserialized tables allocation-free.
func levelConfig(p Params, level, capacity int) iblt.Config {
	return iblt.Config{
		Cells:     iblt.RecommendedCells(capacity, p.HashCount),
		HashCount: p.HashCount,
		KeyLen:    KeyLen(p.Universe.Dim),
		Seed:      hashutil.DeriveSeedN(p.Seed, "core/level", level),
	}.Normalized()
}

// appendKey encodes the (cell, occurrence) IBLT key.
func appendKey(dst []byte, g *grid.Grid, c grid.Cell, occ uint32) []byte {
	dst = g.EncodeCell(dst, c)
	dst = append(dst, byte(occ), byte(occ>>8), byte(occ>>16), byte(occ>>24))
	return dst
}

// splitKey decodes an IBLT key back into cell and occurrence.
func splitKey(g *grid.Grid, key []byte) (grid.Cell, uint32, error) {
	cs := g.EncodedCellSize()
	if len(key) != cs+4 {
		return nil, 0, fmt.Errorf("core: key length %d, want %d", len(key), cs+4)
	}
	c, err := g.DecodeCell(key[:cs])
	if err != nil {
		return nil, 0, err
	}
	occ := uint32(key[cs]) | uint32(key[cs+1])<<8 | uint32(key[cs+2])<<16 | uint32(key[cs+3])<<24
	return c, occ, nil
}

// occupancy maps an encoded cell to its point count at one level. The
// counters are held by pointer so the per-point hot path is a single
// allocation-free map lookup plus an increment; the string key and its
// counter are allocated once per distinct cell, not once per point.
type occupancy = map[string]*uint32

// levelScratch is the reusable per-level working state of a sketch
// build: the key buffer and the occupancy map. Builds are frequent on a
// sync server (every dataset publish and every fetch), so the scratch is
// pooled; clear() keeps the map's buckets warm across builds.
type levelScratch struct {
	key []byte
	occ occupancy
}

var scratchPool = sync.Pool{New: func() any {
	return &levelScratch{occ: make(occupancy)}
}}

// fillLevel inserts every point's (cell, occurrence) key for one level,
// using pooled scratch state.
func fillLevel(t *iblt.Table, g *grid.Grid, level int, pts []points.Point) {
	sc := scratchPool.Get().(*levelScratch)
	sc.key = fillLevelOcc(t, g, level, pts, sc.occ, sc.key)
	clear(sc.occ)
	scratchPool.Put(sc)
}

// fillLevelOcc is fillLevel with caller-owned occupancy state; on return
// occ holds the cell occupancies of pts at the level (the state a
// Maintainer keeps for incremental updates). It returns the (possibly
// regrown) key buffer for reuse.
func fillLevelOcc(t *iblt.Table, g *grid.Grid, level int, pts []points.Point, occ occupancy, keyBuf []byte) []byte {
	buf := keyBuf[:0]
	for _, p := range pts {
		buf = g.AppendCell(buf[:0], level, p)
		c := occ[string(buf)]
		if c == nil {
			c = new(uint32)
			occ[string(buf)] = c
		}
		o := *c
		*c = o + 1
		buf = append(buf, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
		t.Insert(buf)
	}
	return buf
}

// mortonOrder is the Morton (Z-order) presorting of a point multiset.
// Sorting by the bit-interleaved code of the shifted coordinates makes
// the points of any single grid cell contiguous at every level
// simultaneously: the level-ℓ cell of a point is the top ℓ+1 bits of
// each shifted coordinate, so two points share a level-ℓ cell iff they
// agree on the top d·(ℓ+1) bits of the code. That turns per-level
// occurrence-index assignment — otherwise a hash-map lookup per point
// per level, the dominant cost of sketch construction — into a run scan
// with one uint64 compare per point. The shifted coordinates ride along
// in code order as one flat array, so the per-level scans touch memory
// strictly sequentially.
type mortonOrder struct {
	codes  []uint64 // sorted Morton codes, one per point
	coords []int64  // shifted coordinates in code order, d per point
}

// newMortonOrder builds the presorting, or returns nil when the code
// does not fit 64 bits (large dim × depth products fall back to the
// occupancy-map path). The occurrence indices a run scan assigns differ
// from the map path's only in which point of a cell gets which index —
// the key set {(cell, 0..count−1)} and therefore the tables are
// identical, so the two paths interoperate freely across parties.
func newMortonOrder(g *grid.Grid, pts []points.Point) *mortonOrder {
	d := g.Universe().Dim
	coordBits := g.Levels() + 1 // shifted coords are < 2Δ = 2^(L+1)
	if d*coordBits > 64 || len(pts) == 0 || len(pts) > 1<<31-1 {
		return nil
	}
	shift := g.Shift()
	type pair struct {
		code uint64
		idx  int32
	}
	pairs := make([]pair, len(pts))
	for i, p := range pts {
		var code uint64
		for b := coordBits - 1; b >= 0; b-- {
			for j := 0; j < d; j++ {
				code = code<<1 | uint64((p[j]+shift[j])>>uint(b))&1
			}
		}
		pairs[i] = pair{code: code, idx: int32(i)}
	}
	slices.SortFunc(pairs, func(a, b pair) int { return cmp.Compare(a.code, b.code) })
	mo := &mortonOrder{
		codes:  make([]uint64, len(pts)),
		coords: make([]int64, len(pts)*d),
	}
	for i, pr := range pairs {
		mo.codes[i] = pr.code
		p := pts[pr.idx]
		for j := 0; j < d; j++ {
			mo.coords[i*d+j] = p[j] + shift[j]
		}
	}
	return mo
}

// fillLevelSorted inserts every point's (cell, occurrence) key for one
// level by scanning the Morton order: occurrence indices restart
// whenever the code prefix — the cell — changes, and the key bytes come
// straight from the presorted flat coordinate array. With a non-nil occ
// it also records the per-cell counts (one map insert per distinct
// cell, not per point).
func fillLevelSorted(t *iblt.Table, g *grid.Grid, level int, mo *mortonOrder, occ occupancy, keyBuf []byte) []byte {
	d := g.Universe().Dim
	cellShift := uint(d * (g.Levels() - level)) // < 64 by newMortonOrder's bound
	coordShift := uint(g.Levels() - level)      // cell coord = shifted coord >> (L−ℓ)
	keyLen := 8*d + 4
	buf := keyBuf
	if cap(buf) < keyLen {
		buf = make([]byte, keyLen)
	}
	buf = buf[:keyLen]
	var prev uint64
	var o uint32
	var cnt *uint32
	for i, code := range mo.codes {
		cell := code >> cellShift
		if i == 0 || cell != prev {
			prev, o = cell, 0
		} else {
			o++
		}
		for j := 0; j < d; j++ {
			binary.LittleEndian.PutUint64(buf[8*j:], uint64(mo.coords[i*d+j]>>coordShift))
		}
		if occ != nil {
			if o == 0 {
				cnt = new(uint32)
				occ[string(buf[:8*d])] = cnt
			}
			*cnt++
		}
		binary.LittleEndian.PutUint32(buf[8*d:], o)
		t.Insert(buf)
	}
	return buf
}

// Sketch is Alice's transmissible summary: one IBLT per grid level in
// [Params.MinLevel, Params.MaxLevel].
type Sketch struct {
	Params Params
	// Count is the number of points summarized (|S_A|), carried for
	// diagnostics and for the repair-size invariant check.
	Count int
	// Tables holds one IBLT per level, indexed by level−MinLevel.
	Tables []*iblt.Table
}

// BuildSketch summarizes pts under p. This is Alice's encoder; it is also
// invoked by Bob to build the identical structure he subtracts. Levels
// are built in parallel across up to runtime.GOMAXPROCS(0) workers; the
// result is byte-identical to a sequential build (each level is a
// deterministic function of the parameters and the point order).
func BuildSketch(p Params, pts []points.Point) (*Sketch, error) {
	return BuildSketchParallel(p, pts, 0)
}

// BuildSketchParallel is BuildSketch with an explicit worker-pool bound.
// workers ≤ 0 means runtime.GOMAXPROCS(0); 1 forces a sequential build.
// Every worker count produces byte-identical sketches — the equivalence
// the tests pin — so the knob trades only CPU placement, never output.
func BuildSketchParallel(p Params, pts []points.Point, workers int) (*Sketch, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	tables, _, err := buildTables(p, g, pts, workers, false)
	if err != nil {
		return nil, err
	}
	return &Sketch{Params: p, Count: len(pts), Tables: tables}, nil
}

// buildTables constructs the filled per-level IBLTs of pts under the
// normalized p, fanning levels out over a bounded worker pool. With
// wantOcc it also returns each level's occupancy map (fresh, unpooled —
// the Maintainer keeps them). Each level is built independently and
// deterministically, so the concurrency is race-free by construction and
// invisible in the output.
func buildTables(p Params, g *grid.Grid, pts []points.Point, workers int, wantOcc bool) ([]*iblt.Table, []occupancy, error) {
	levels := p.MaxLevel - p.MinLevel + 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > levels {
		workers = levels
	}
	tables := make([]*iblt.Table, levels)
	var occs []occupancy
	if wantOcc {
		occs = make([]occupancy, levels)
	}
	order := newMortonOrder(g, pts) // nil → occupancy-map fallback
	buildOne := func(idx int) error {
		t, err := levelTable(p, p.MinLevel+idx, p.TableCapacity)
		if err != nil {
			return err
		}
		switch {
		case order != nil:
			var occ occupancy
			if wantOcc {
				occ = make(occupancy, len(pts))
				occs[idx] = occ
			}
			fillLevelSorted(t, g, p.MinLevel+idx, order, occ, nil)
		case wantOcc:
			occ := make(occupancy, len(pts))
			fillLevelOcc(t, g, p.MinLevel+idx, pts, occ, make([]byte, 0, KeyLen(p.Universe.Dim)))
			occs[idx] = occ
		default:
			fillLevel(t, g, p.MinLevel+idx, pts)
		}
		tables[idx] = t
		return nil
	}
	if workers == 1 {
		for idx := 0; idx < levels; idx++ {
			if err := buildOne(idx); err != nil {
				return nil, nil, err
			}
		}
		return tables, occs, nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= levels {
					return
				}
				if err := buildOne(idx); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, nil, firstEr
	}
	return tables, occs, nil
}

// WireSize returns the total marshalled size of the sketch in bytes.
func (s *Sketch) WireSize() int {
	n := sketchHeaderSize
	for _, t := range s.Tables {
		n += 4 + t.WireSize()
	}
	return n
}

// LevelOutcome records what happened at one level during Reconcile's scan.
type LevelOutcome struct {
	Level    int
	Decoded  bool
	DiffSize int // decoded keys (valid only when Decoded)
}

// Result is the outcome of a reconciliation on Bob's side.
type Result struct {
	// SPrime is Bob's reconciled multiset S'_B.
	SPrime []points.Point
	// Params are the normalized parameters the reconciliation ran under
	// (for the one-shot protocol, the ones carried by Alice's sketch).
	Params Params
	// Level is the finest grid level whose sketch decoded.
	Level int
	// CellWidth is the grid cell width at Level.
	CellWidth int64
	// Added holds the cell-center points inserted into S'_B (one per
	// Alice-only key).
	Added []points.Point
	// Removed holds Bob's own points deleted from S'_B (one per Bob-only
	// key).
	Removed []points.Point
	// Outcomes records the decode attempt at every scanned level, finest
	// first, ending with the successful one.
	Outcomes []LevelOutcome
}

// DiffSize returns the total number of decoded difference keys.
func (r *Result) DiffSize() int { return len(r.Added) + len(r.Removed) }

// ErrNoDecodableLevel is returned when no level of the sketch decodes —
// the difference exceeded the sketch's budget at every resolution. The
// caller should retry with a larger DiffBudget (the estimate-first
// protocol automates this).
var ErrNoDecodableLevel = errors.New("core: no level of the sketch decoded; increase DiffBudget")

// ErrInconsistentSketch is returned when a decoded difference contradicts
// Bob's own data (e.g. a Bob-only key whose cell Bob never occupied),
// which indicates corruption or mismatched parameters.
var ErrInconsistentSketch = errors.New("core: decoded difference inconsistent with local set")

// Reconcile is Bob's side of the one-shot protocol: given Alice's sketch
// and his own points, it returns S'_B ≈ S_A. Bob's points must lie in the
// sketch's universe.
func Reconcile(s *Sketch, bobPts []points.Point) (*Result, error) {
	p, err := s.Params.normalized()
	if err != nil {
		return nil, err
	}
	if len(s.Tables) != p.MaxLevel-p.MinLevel+1 {
		return nil, fmt.Errorf("core: sketch has %d tables for level range [%d,%d]", len(s.Tables), p.MinLevel, p.MaxLevel)
	}
	if err := p.Universe.CheckSet(bobPts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	mine, err := BuildSketch(p, bobPts)
	if err != nil {
		return nil, err
	}
	res := &Result{Params: p}
	// One scratch table cycles through the level scan: every level has
	// the same shape, so each attempt is a storage-reusing copy, an
	// in-place subtraction and a destructive decode — no per-level table
	// allocations on this per-session path.
	var scratch *iblt.Table
	for l := p.MaxLevel; l >= p.MinLevel; l-- {
		idx := l - p.MinLevel
		if scratch == nil {
			scratch = s.Tables[idx].Clone()
		} else if err := scratch.CopyFrom(s.Tables[idx]); err != nil {
			return nil, fmt.Errorf("core: level %d: %w", l, err)
		}
		if err := scratch.Sub(mine.Tables[idx]); err != nil {
			return nil, fmt.Errorf("core: level %d: %w", l, err)
		}
		diff, derr := scratch.DecodeMut()
		if derr != nil {
			res.Outcomes = append(res.Outcomes, LevelOutcome{Level: l})
			continue
		}
		res.Outcomes = append(res.Outcomes, LevelOutcome{Level: l, Decoded: true, DiffSize: diff.Size()})
		if err := repair(res, g, l, diff, bobPts); err != nil {
			return nil, err
		}
		return res, nil
	}
	return nil, ErrNoDecodableLevel
}

// repair applies a decoded level difference to Bob's multiset.
//
// Per-point work here is the dominant allocation site of the whole
// fetch path (it runs once per session over all of |S_B|), so the
// occupancy grouping and the result clone both work out of single flat
// buffers: a sorted index over one encoded-cells buffer instead of a
// map of per-cell slices, and one backing array carved into the S'_B
// points instead of a clone per point.
func repair(res *Result, g *grid.Grid, level int, diff *iblt.Diff, bobPts []points.Point) error {
	res.Level = level
	res.CellWidth = g.CellWidth(level)
	// Recompute Bob's occupancy at this level so Bob-only keys (cell,occ)
	// resolve to concrete points of his. Sorting the point indices by
	// (encoded cell, index) groups each cell's occupants contiguously in
	// slice order, so occurrence j of a cell is the j-th entry of its run.
	cs := g.EncodedCellSize()
	cells := make([]byte, 0, len(bobPts)*cs)
	for _, p := range bobPts {
		cells = g.AppendCell(cells, level, p)
	}
	cellAt := func(i int32) []byte { return cells[int(i)*cs : (int(i)+1)*cs] }
	order := make([]int32, len(bobPts))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if c := bytes.Compare(cellAt(a), cellAt(b)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	cellBuf := make([]byte, 0, cs)
	remove := make(map[int]bool, len(diff.Neg))
	for _, key := range diff.Neg {
		cell, occ, err := splitKey(g, key)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInconsistentSketch, err)
		}
		cellBuf = g.EncodeCell(cellBuf[:0], cell)
		first := sort.Search(len(order), func(j int) bool {
			return bytes.Compare(cellAt(order[j]), cellBuf) >= 0
		})
		run := 0
		for first+run < len(order) && bytes.Equal(cellAt(order[first+run]), cellBuf) {
			run++
		}
		if int(occ) >= run {
			return fmt.Errorf("%w: bob-only key names occurrence %d of a cell with %d local points", ErrInconsistentSketch, occ, run)
		}
		idx := int(order[first+int(occ)])
		if remove[idx] {
			return fmt.Errorf("%w: point %d removed twice", ErrInconsistentSketch, idx)
		}
		remove[idx] = true
		res.Removed = append(res.Removed, bobPts[idx])
	}
	res.SPrime = make([]points.Point, 0, len(bobPts)-len(remove)+len(diff.Pos))
	backing := make([]int64, 0, (len(bobPts)-len(remove))*g.Dim())
	for i, p := range bobPts {
		if !remove[i] {
			// Full-slice expressions keep each point's capacity at its own
			// length, so appending to one returned point cannot clobber its
			// neighbor in the shared backing array.
			start := len(backing)
			backing = append(backing, p...)
			res.SPrime = append(res.SPrime, points.Point(backing[start:len(backing):len(backing)]))
		}
	}
	for _, key := range diff.Pos {
		cell, _, err := splitKey(g, key)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInconsistentSketch, err)
		}
		center := g.Center(level, cell)
		res.Added = append(res.Added, center)
		res.SPrime = append(res.SPrime, center)
	}
	return nil
}

// BuildLevelTable builds the single-level IBLT used by the estimate-first
// protocol, with an explicit key capacity.
func BuildLevelTable(p Params, pts []points.Point, level, capacity int) (*iblt.Table, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if level < 0 || level > p.Universe.Levels() {
		return nil, fmt.Errorf("core: level %d outside [0,%d]", level, p.Universe.Levels())
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	t, err := levelTable(p, level, capacity)
	if err != nil {
		return nil, err
	}
	fillLevel(t, g, level, pts)
	return t, nil
}

// ReconcileLevel is the single-level analogue of Reconcile, used by the
// estimate-first protocol once a level has been negotiated: it subtracts
// Bob's identically sized table and repairs at exactly that level.
func ReconcileLevel(p Params, aliceTable *iblt.Table, bobPts []points.Point, level int) (*Result, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(bobPts); err != nil {
		return nil, err
	}
	mine, err := iblt.New(aliceTable.Config())
	if err != nil {
		return nil, err
	}
	fillLevel(mine, g, level, bobPts)
	t := aliceTable.Clone()
	if err := t.Sub(mine); err != nil {
		return nil, err
	}
	diff, err := t.Decode()
	if err != nil {
		return nil, fmt.Errorf("core: level %d table did not decode: %w", level, err)
	}
	res := &Result{Params: p, Outcomes: []LevelOutcome{{Level: level, Decoded: true, DiffSize: diff.Size()}}}
	if err := repair(res, g, level, diff, bobPts); err != nil {
		return nil, err
	}
	return res, nil
}

// LevelEstimators builds one bottom-k difference estimator per level over
// the same (cell, occurrence) keys the IBLTs would hold. The estimate-first
// protocol sends these instead of full tables in its first round.
func LevelEstimators(p Params, pts []points.Point, k int) ([]*sketch.BottomK, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	ests := make([]*sketch.BottomK, 0, p.MaxLevel-p.MinLevel+1)
	buf := make([]byte, 0, KeyLen(p.Universe.Dim))
	for l := p.MinLevel; l <= p.MaxLevel; l++ {
		e, err := sketch.NewBottomK(k, hashutil.DeriveSeedN(p.Seed, "core/est", l))
		if err != nil {
			return nil, err
		}
		occ := make(occupancy, len(pts))
		for _, pt := range pts {
			buf = g.AppendCell(buf[:0], l, pt)
			c := occ[string(buf)]
			if c == nil {
				c = new(uint32)
				occ[string(buf)] = c
			}
			o := *c
			*c = o + 1
			buf = append(buf, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
			e.Add(buf)
		}
		ests = append(ests, e)
	}
	return ests, nil
}

// ChooseLevel picks the finest level whose estimated difference fits the
// given key budget, given Alice's and Bob's level estimators. It returns
// the level and the estimated difference size at that level (already
// padded for estimator resolution — size tables from it directly). If no
// level fits, it returns the coarsest level with its estimate.
//
// A bottom-k estimator resolves the difference only to about one
// quantization step of (|A|+|B|)/k keys, so raw estimates near zero are
// unreliable for large sets; half a step is added before both the budget
// comparison and the returned estimate. Callers that need fine level
// selection on large sets should raise the estimator size accordingly
// (k ≈ n/32 makes the step ~64 keys).
func ChooseLevel(p Params, alice, bob []*sketch.BottomK, budget int) (level int, estimate float64, err error) {
	p, err = p.normalized()
	if err != nil {
		return 0, 0, err
	}
	if len(alice) != len(bob) || len(alice) != p.MaxLevel-p.MinLevel+1 {
		return 0, 0, fmt.Errorf("core: estimator count mismatch (%d alice, %d bob, want %d)", len(alice), len(bob), p.MaxLevel-p.MinLevel+1)
	}
	for i := len(alice) - 1; i >= 0; i-- {
		est, err := sketch.EstimateDiff(alice[i], bob[i])
		if err != nil {
			return 0, 0, err
		}
		step := float64(alice[i].Count()+bob[i].Count()) / float64(alice[i].K())
		est += step / 2
		// A level is affordable if its padded estimate fits the budget;
		// when the budget is below the estimator's own resolution, one
		// step is the honest acceptance bar (the caller provisions at
		// least that much capacity anyway, and rejecting everything the
		// estimator cannot resolve would drive selection uselessly
		// coarse).
		limit := float64(budget)
		if step > limit {
			limit = step
		}
		if est <= limit || i == 0 {
			return p.MinLevel + i, est, nil
		}
	}
	return p.MinLevel, 0, nil // unreachable; loop always returns at i==0
}
