package core

import (
	"testing"

	"robustset/internal/points"
	"robustset/internal/workload"
)

// TestTrimmedLevelRange exercises sketches restricted to a sub-range of
// grid levels — the configuration a deployment uses when it knows the
// noise scale a priori and wants to skip useless resolutions.
func TestTrimmedLevelRange(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 16}
	inst := genInstance(t, workload.Config{
		N: 300, Universe: u, Outliers: 5,
		Noise: workload.NoiseUniform, Scale: 4, Seed: 51,
	})
	full := testParams(u, 5, 3)
	fullSk, err := BuildSketch(full, inst.Alice)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := Reconcile(fullSk, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	// Trim to a window around the level the full scan chose.
	lo, hi := fullRes.Level-2, fullRes.Level+1
	if lo < 0 {
		lo = 0
	}
	if hi > u.Levels() {
		hi = u.Levels()
	}
	trimmed := testParams(u, 5, 3).WithLevels(lo, hi)
	sk, err := BuildSketch(trimmed, inst.Alice)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sk.Tables), hi-lo+1; got != want {
		t.Fatalf("trimmed sketch has %d tables, want %d", got, want)
	}
	if sk.WireSize() >= fullSk.WireSize() {
		t.Errorf("trimmed sketch (%dB) not smaller than full (%dB)", sk.WireSize(), fullSk.WireSize())
	}
	// The trimmed sketch must survive the wire and reconcile within its
	// window.
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wire Sketch
	if err := wire.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	res, err := Reconcile(&wire, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level < lo || res.Level > hi {
		t.Errorf("decoded level %d outside trimmed range [%d,%d]", res.Level, lo, hi)
	}
	if len(res.SPrime) != len(inst.Bob) {
		t.Errorf("|S'_B| = %d, want %d", len(res.SPrime), len(inst.Bob))
	}
}

// TestSingleLevelParams pins MinLevel == MaxLevel.
func TestSingleLevelParams(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	inst := genInstance(t, workload.Config{N: 100, Universe: u, Outliers: 3, Seed: 53})
	p := testParams(u, 3, 9).WithLevels(u.Levels(), u.Levels())
	sk, err := BuildSketch(p, inst.Alice)
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Tables) != 1 {
		t.Fatalf("%d tables, want 1", len(sk.Tables))
	}
	res, err := Reconcile(sk, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if !points.EqualMultisets(res.SPrime, inst.Alice) {
		t.Error("single finest level should be exact in the exact regime")
	}
}

// TestParamCeilings verifies the anti-DoS parameter bounds.
func TestParamCeilings(t *testing.T) {
	base := points.Universe{Dim: 2, Delta: 1 << 8}
	if _, err := BuildSketch(Params{Universe: points.Universe{Dim: MaxDim + 1, Delta: 4}, DiffBudget: 1}, nil); err == nil {
		t.Error("dimension over ceiling accepted")
	}
	if _, err := BuildSketch(Params{Universe: base, DiffBudget: MaxDiffBudget + 1}, nil); err == nil {
		t.Error("diff budget over ceiling accepted")
	}
	if _, err := BuildSketch(Params{Universe: base, DiffBudget: 1, TableCapacity: MaxDiffBudget + 1}, nil); err == nil {
		t.Error("table capacity over ceiling accepted")
	}
	if _, err := BuildSketch(Params{Universe: base, DiffBudget: 1, TableCapacity: -1}, nil); err == nil {
		t.Error("negative table capacity accepted")
	}
}

// TestSketchSizeDeclaredMismatchRejected covers the wire-size cross-check
// that keeps hostile headers from driving allocations.
func TestSketchSizeDeclaredMismatchRejected(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 8}
	sk, _ := BuildSketch(testParams(u, 2, 1), []points.Point{{1, 2}})
	good, _ := sk.MarshalBinary()
	// Inflate the declared capacity field (offset 29, u32): tables no
	// longer match what the parameters imply.
	bad := append([]byte{}, good...)
	bad[29] = 0xff
	var got Sketch
	if err := got.UnmarshalBinary(bad); err == nil {
		t.Fatal("capacity-inflated sketch accepted")
	}
}
