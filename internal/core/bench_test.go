package core

import (
	"testing"

	"robustset/internal/points"
	"robustset/internal/workload"
)

func benchWorkload(b *testing.B, n int) (*workload.Instance, Params) {
	b.Helper()
	u := points.Universe{Dim: 2, Delta: 1 << 20}
	inst, err := workload.Generate(workload.Config{
		N: n, Universe: u, Outliers: 16,
		Noise: workload.NoiseUniform, Scale: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return inst, Params{Universe: u, Seed: 7, DiffBudget: 16}
}

func BenchmarkBuildSketch4096(b *testing.B) {
	inst, p := benchWorkload(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSketch(p, inst.Alice); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(4096, "points")
}

func BenchmarkBuildSketch100k(b *testing.B) {
	inst, p := benchWorkload(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSketch(p, inst.Alice); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100000, "points")
}

func BenchmarkBuildSketch100kSequential(b *testing.B) {
	inst, p := benchWorkload(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSketchParallel(p, inst.Alice, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100000, "points")
}

func BenchmarkNewMaintainer100k(b *testing.B) {
	inst, p := benchWorkload(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewMaintainer(p, inst.Alice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconcile4096(b *testing.B) {
	inst, p := benchWorkload(b, 4096)
	sk, err := BuildSketch(p, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconcile(sk, inst.Bob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaintainerAdd(b *testing.B) {
	inst, p := benchWorkload(b, 1024)
	m, err := NewMaintainer(p, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	pts := inst.Bob
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Add(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaintainerAddRemove(b *testing.B) {
	inst, p := benchWorkload(b, 1024)
	m, err := NewMaintainer(p, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	pt := points.Point{12345, 67890}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Add(pt); err != nil {
			b.Fatal(err)
		}
		if err := m.Remove(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSketchMarshal(b *testing.B) {
	inst, p := benchWorkload(b, 4096)
	sk, err := BuildSketch(p, inst.Alice)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}
