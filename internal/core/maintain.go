package core

import (
	"errors"
	"fmt"

	"robustset/internal/grid"
	"robustset/internal/points"
)

// Maintainer keeps Alice's sketch synchronized with a changing multiset:
// Add and Remove update every level table in O(levels) hash operations,
// instead of the O(n·levels) cost of rebuilding with BuildSketch after
// each change. A sync server that ingests a stream of updates keeps one
// Maintainer per dataset and serves Sketch() on demand.
//
// Correctness rests on the anonymity of occurrence indices: each level
// table holds exactly the keys {(cell, j) : j < count(cell)}, regardless
// of which points produced them. Add inserts (cell, count) and Remove
// deletes (cell, count−1), so after any sequence of updates the tables
// are bitwise identical to what BuildSketch would produce on the final
// multiset — a property the tests assert on the wire encoding.
//
// The maintainer stores per-level cell occupancies, which costs O(n ·
// levels) memory; datasets that are rebuilt rarely and updated never are
// cheaper off with plain BuildSketch.
type Maintainer struct {
	params Params
	g      *grid.Grid
	sketch *Sketch
	occ    []map[string]uint32 // per level: cell key → occupancy count
	count  int
}

// NewMaintainer builds the sketch for the initial multiset and the
// occupancy state needed for incremental updates.
func NewMaintainer(p Params, pts []points.Point) (*Maintainer, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	sk, err := BuildSketch(p, pts)
	if err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{params: p, g: g, sketch: sk, count: len(pts)}
	m.occ = make([]map[string]uint32, p.MaxLevel-p.MinLevel+1)
	cellBuf := make([]byte, 0, g.EncodedCellSize())
	for l := p.MinLevel; l <= p.MaxLevel; l++ {
		occ := make(map[string]uint32, len(pts))
		for _, pt := range pts {
			cellBuf = g.EncodeCell(cellBuf[:0], g.Cell(l, pt))
			occ[string(cellBuf)]++
		}
		m.occ[l-p.MinLevel] = occ
	}
	return m, nil
}

// Count returns the current multiset size.
func (m *Maintainer) Count() int { return m.count }

// Params returns the maintainer's normalized parameters.
func (m *Maintainer) Params() Params { return m.params }

// Sketch returns the live sketch for the current multiset. The returned
// value shares state with the maintainer: marshal it (or Clone the
// tables) before mutating the set again if a stable snapshot is needed.
func (m *Maintainer) Sketch() *Sketch {
	m.sketch.Count = m.count
	return m.sketch
}

// Add inserts one point into the maintained multiset.
func (m *Maintainer) Add(pt points.Point) error {
	if !m.params.Universe.Contains(pt) {
		return fmt.Errorf("core: maintainer: point %v outside universe", pt)
	}
	keyBuf := make([]byte, 0, KeyLen(m.params.Universe.Dim))
	cellBuf := make([]byte, 0, m.g.EncodedCellSize())
	for l := m.params.MinLevel; l <= m.params.MaxLevel; l++ {
		idx := l - m.params.MinLevel
		cell := m.g.Cell(l, pt)
		cellBuf = m.g.EncodeCell(cellBuf[:0], cell)
		o := m.occ[idx][string(cellBuf)]
		keyBuf = appendKey(keyBuf[:0], m.g, cell, o)
		m.sketch.Tables[idx].Insert(keyBuf)
		m.occ[idx][string(cellBuf)] = o + 1
	}
	m.count++
	return nil
}

// ErrNotPresent is returned by Remove when the point cannot be in the
// maintained multiset.
var ErrNotPresent = errors.New("core: maintainer: point not present")

// Remove deletes one instance of a point from the maintained multiset.
// When the sketch includes the finest grid level (the default), absence
// is detected exactly; with a trimmed MaxLevel, removal of an absent
// point that shares every included cell with a present one will instead
// remove that neighbour — the same ambiguity the protocol's repair has
// at that resolution.
func (m *Maintainer) Remove(pt points.Point) error {
	if !m.params.Universe.Contains(pt) {
		return fmt.Errorf("core: maintainer: point %v outside universe", pt)
	}
	// Validate every level before touching any table, so a failed remove
	// leaves the sketch untouched.
	for l := m.params.MinLevel; l <= m.params.MaxLevel; l++ {
		idx := l - m.params.MinLevel
		cellKey := string(m.g.EncodeCell(nil, m.g.Cell(l, pt)))
		if m.occ[idx][cellKey] == 0 {
			return fmt.Errorf("%w: %v (empty cell at level %d)", ErrNotPresent, pt, l)
		}
	}
	keyBuf := make([]byte, 0, KeyLen(m.params.Universe.Dim))
	cellBuf := make([]byte, 0, m.g.EncodedCellSize())
	for l := m.params.MinLevel; l <= m.params.MaxLevel; l++ {
		idx := l - m.params.MinLevel
		cell := m.g.Cell(l, pt)
		cellBuf = m.g.EncodeCell(cellBuf[:0], cell)
		o := m.occ[idx][string(cellBuf)] - 1
		keyBuf = appendKey(keyBuf[:0], m.g, cell, o)
		m.sketch.Tables[idx].Delete(keyBuf)
		if o == 0 {
			delete(m.occ[idx], string(cellBuf))
		} else {
			m.occ[idx][string(cellBuf)] = o
		}
	}
	m.count--
	return nil
}
