package core

import (
	"errors"
	"fmt"

	"robustset/internal/grid"
	"robustset/internal/points"
)

// Maintainer keeps Alice's sketch synchronized with a changing multiset:
// Add and Remove update every level table in O(levels) hash operations,
// instead of the O(n·levels) cost of rebuilding with BuildSketch after
// each change. A sync server that ingests a stream of updates keeps one
// Maintainer per dataset and serves Sketch() on demand.
//
// Correctness rests on the anonymity of occurrence indices: each level
// table holds exactly the keys {(cell, j) : j < count(cell)}, regardless
// of which points produced them. Add inserts (cell, count) and Remove
// deletes (cell, count−1), so after any sequence of updates the tables
// are bitwise identical to what BuildSketch would produce on the final
// multiset — a property the tests assert on the wire encoding.
//
// The maintainer stores per-level cell occupancies, which costs O(n ·
// levels) memory; datasets that are rebuilt rarely and updated never are
// cheaper off with plain BuildSketch. The initial build fans levels out
// over the same bounded worker pool as BuildSketch, so publishing a
// large dataset scales with cores.
//
// A Maintainer is not safe for concurrent use; callers that share one
// across goroutines (e.g. a server Dataset) serialize access externally.
type Maintainer struct {
	params Params
	g      *grid.Grid
	sketch *Sketch
	occ    []occupancy // per level: cell key → occupancy count
	count  int
	keyBuf []byte // scratch reused by Add/Remove (no per-update allocs)
}

// NewMaintainer builds the sketch for the initial multiset and the
// occupancy state needed for incremental updates, using up to
// runtime.GOMAXPROCS(0) parallel level builders.
func NewMaintainer(p Params, pts []points.Point) (*Maintainer, error) {
	return NewMaintainerParallel(p, pts, 0)
}

// NewMaintainerParallel is NewMaintainer with an explicit worker-pool
// bound (≤ 0 means runtime.GOMAXPROCS(0), 1 forces sequential).
func NewMaintainerParallel(p Params, pts []points.Point, workers int) (*Maintainer, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	// One pass builds both the tables and the occupancy state the
	// incremental updates need — the occupancies are exactly the maps a
	// plain build fills and discards.
	tables, occs, err := buildTables(p, g, pts, workers, true)
	if err != nil {
		return nil, err
	}
	return &Maintainer{
		params: p,
		g:      g,
		sketch: &Sketch{Params: p, Count: len(pts), Tables: tables},
		occ:    occs,
		count:  len(pts),
		keyBuf: make([]byte, 0, KeyLen(p.Universe.Dim)),
	}, nil
}

// Count returns the current multiset size.
func (m *Maintainer) Count() int { return m.count }

// Params returns the maintainer's normalized parameters.
func (m *Maintainer) Params() Params { return m.params }

// Sketch returns the live sketch for the current multiset. The returned
// value shares state with the maintainer: marshal it (or Clone the
// tables) before mutating the set again if a stable snapshot is needed.
func (m *Maintainer) Sketch() *Sketch {
	m.sketch.Count = m.count
	return m.sketch
}

// Add inserts one point into the maintained multiset.
func (m *Maintainer) Add(pt points.Point) error {
	if !m.params.Universe.Contains(pt) {
		return fmt.Errorf("core: maintainer: point %v outside universe", pt)
	}
	buf := m.keyBuf
	for l := m.params.MinLevel; l <= m.params.MaxLevel; l++ {
		idx := l - m.params.MinLevel
		buf = m.g.AppendCell(buf[:0], l, pt)
		c := m.occ[idx][string(buf)]
		if c == nil {
			c = new(uint32)
			m.occ[idx][string(buf)] = c
		}
		o := *c
		buf = append(buf, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
		m.sketch.Tables[idx].Insert(buf)
		*c = o + 1
	}
	m.keyBuf = buf
	m.count++
	return nil
}

// ErrNotPresent is returned by Remove when the point cannot be in the
// maintained multiset.
var ErrNotPresent = errors.New("core: maintainer: point not present")

// Remove deletes one instance of a point from the maintained multiset.
// When the sketch includes the finest grid level (the default), absence
// is detected exactly; with a trimmed MaxLevel, removal of an absent
// point that shares every included cell with a present one will instead
// remove that neighbour — the same ambiguity the protocol's repair has
// at that resolution.
func (m *Maintainer) Remove(pt points.Point) error {
	if !m.params.Universe.Contains(pt) {
		return fmt.Errorf("core: maintainer: point %v outside universe", pt)
	}
	// Validate every level before touching any table, so a failed remove
	// leaves the sketch untouched.
	buf := m.keyBuf
	for l := m.params.MinLevel; l <= m.params.MaxLevel; l++ {
		idx := l - m.params.MinLevel
		buf = m.g.AppendCell(buf[:0], l, pt)
		if c := m.occ[idx][string(buf)]; c == nil || *c == 0 {
			m.keyBuf = buf
			return fmt.Errorf("%w: %v (empty cell at level %d)", ErrNotPresent, pt, l)
		}
	}
	for l := m.params.MinLevel; l <= m.params.MaxLevel; l++ {
		idx := l - m.params.MinLevel
		buf = m.g.AppendCell(buf[:0], l, pt)
		c := m.occ[idx][string(buf)]
		o := *c - 1
		if o == 0 {
			delete(m.occ[idx], string(buf))
		} else {
			*c = o
		}
		buf = append(buf, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
		m.sketch.Tables[idx].Delete(buf)
	}
	m.keyBuf = buf
	m.count--
	return nil
}
