package core

import (
	"math/rand/v2"
	"testing"

	"robustset/internal/points"
	"robustset/internal/workload"
)

// TestNewMaintainerFromSketch recovers a maintainer from a serialized
// sketch (the snapshot path) and drives it through further churn: the
// adopted tables plus rebuilt occupancies must behave exactly like the
// original maintainer, byte-identical to fresh builds throughout.
func TestNewMaintainerFromSketch(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	p := testParams(u, 4, 29)
	rng := rand.New(rand.NewPCG(5, 11))
	inst := genInstance(t, workload.Config{N: 300, Universe: u, Seed: 55, Clusters: 3})

	m, err := NewMaintainer(p, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	current := points.Clone(inst.Bob)
	// Duplicates force multi-occupancy cells into the recovered state.
	for i := 0; i < 20; i++ {
		dup := current[rng.IntN(len(current))].Clone()
		if err := m.Add(dup); err != nil {
			t.Fatal(err)
		}
		current = append(current, dup)
	}

	// Serialize and reload the sketch — exactly what a snapshot stores.
	blob, err := m.Sketch().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Sketch
	if err := loaded.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}

	rec, err := NewMaintainerFromSketch(p, current, &loaded)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != len(current) {
		t.Fatalf("recovered count %d, want %d", rec.Count(), len(current))
	}
	if err := rec.VerifyFreshBuild(current); err != nil {
		t.Fatalf("recovered maintainer fails the oracle immediately: %v", err)
	}

	// Churn the recovered maintainer: occupancy state must be fully live.
	for step := 0; step < 600; step++ {
		if len(current) > 0 && rng.IntN(10) < 6 {
			i := rng.IntN(len(current))
			if err := rec.Remove(current[i]); err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			current[i] = current[len(current)-1]
			current = current[:len(current)-1]
		} else {
			pt := points.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
			if len(current) > 0 && rng.IntN(3) == 0 {
				pt = current[rng.IntN(len(current))].Clone()
			}
			if err := rec.Add(pt); err != nil {
				t.Fatalf("step %d: add: %v", step, err)
			}
			current = append(current, pt)
		}
		if step%200 == 199 {
			if err := rec.VerifyFreshBuild(current); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Drain to empty through the recovered state.
	for len(current) > 0 {
		i := rng.IntN(len(current))
		if err := rec.Remove(current[i]); err != nil {
			t.Fatalf("drain: %v", err)
		}
		current[i] = current[len(current)-1]
		current = current[:len(current)-1]
	}
	if err := rec.VerifyFreshBuild(nil); err != nil {
		t.Fatalf("drained: %v", err)
	}
}

func TestNewMaintainerFromSketchRejectsMismatch(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	p := testParams(u, 4, 7)
	inst := genInstance(t, workload.Config{N: 50, Universe: u, Seed: 9, Clusters: 2})
	m, err := NewMaintainer(p, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	sk := m.Sketch()

	// Count mismatch: the point list does not match the sketch.
	if _, err := NewMaintainerFromSketch(p, inst.Bob[:len(inst.Bob)-1], sk); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Params mismatch: a different seed is a different grid entirely.
	p2 := p
	p2.Seed++
	if _, err := NewMaintainerFromSketch(p2, inst.Bob, sk); err == nil {
		t.Fatal("params mismatch accepted")
	}
	// Table-count mismatch.
	bad := &Sketch{Params: sk.Params, Count: sk.Count, Tables: sk.Tables[:1]}
	if _, err := NewMaintainerFromSketch(p, inst.Bob, bad); err == nil {
		t.Fatal("table-count mismatch accepted")
	}
}
