package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"robustset/internal/grid"
	"robustset/internal/points"
)

// NewMaintainerFromSketch rebuilds a Maintainer from a recovered point
// multiset and its previously serialized sketch, adopting the sketch's
// tables instead of re-inserting every (cell, occurrence) key. Only the
// per-level occupancy maps are recomputed — cell hashing without any
// IBLT work — so recovery costs a fraction of a fresh build and the
// adopted tables are bit-for-bit the ones that were persisted.
//
// The sketch must actually describe pts: its parameters must equal p
// (compared on the normalized wire encoding) and its count must match.
// Table contents are trusted — the caller's snapshot CRC vouches for
// them; VerifyFreshBuild offers a full cross-check where paranoia is
// warranted.
func NewMaintainerFromSketch(p Params, pts []points.Point, sk *Sketch) (*Maintainer, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	pw, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sw, err := sk.Params.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("core: recover: sketch params: %w", err)
	}
	if !bytes.Equal(pw, sw) {
		return nil, fmt.Errorf("core: recover: sketch parameters differ from the dataset's")
	}
	if sk.Count != len(pts) {
		return nil, fmt.Errorf("core: recover: sketch summarizes %d points, recovered state has %d", sk.Count, len(pts))
	}
	if got, want := len(sk.Tables), p.MaxLevel-p.MinLevel+1; got != want {
		return nil, fmt.Errorf("core: recover: sketch has %d tables for level range [%d,%d]", got, p.MinLevel, p.MaxLevel)
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, err
	}
	g, err := gridFor(p)
	if err != nil {
		return nil, err
	}
	occs := buildOccupancies(p, g, pts, 0)
	return &Maintainer{
		params: p,
		g:      g,
		sketch: &Sketch{Params: p, Count: len(pts), Tables: sk.Tables},
		occ:    occs,
		count:  len(pts),
		keyBuf: make([]byte, 0, KeyLen(p.Universe.Dim)),
	}, nil
}

// buildOccupancies computes the per-level cell occupancy maps of pts —
// the state buildTables produces alongside the tables, minus every IBLT
// insert. Levels fan out over a bounded worker pool like buildTables.
func buildOccupancies(p Params, g *grid.Grid, pts []points.Point, workers int) []occupancy {
	levels := p.MaxLevel - p.MinLevel + 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > levels {
		workers = levels
	}
	occs := make([]occupancy, levels)
	order := newMortonOrder(g, pts)
	fillOne := func(idx int) {
		occ := make(occupancy, len(pts))
		occs[idx] = occ
		level := p.MinLevel + idx
		if order != nil {
			// Code-order scan: one map insert per distinct cell, counters
			// bumped per point (see fillLevelSorted, minus the inserts).
			d := g.Universe().Dim
			cellShift := uint(d * (g.Levels() - level))
			coordShift := uint(g.Levels() - level)
			buf := make([]byte, 8*d)
			var prev uint64
			var cnt *uint32
			for i, code := range order.codes {
				cell := code >> cellShift
				if i == 0 || cell != prev {
					prev = cell
					for j := 0; j < d; j++ {
						binary.LittleEndian.PutUint64(buf[8*j:], uint64(order.coords[i*d+j]>>coordShift))
					}
					cnt = new(uint32)
					occ[string(buf)] = cnt
				}
				*cnt++
			}
			return
		}
		buf := make([]byte, 0, KeyLen(p.Universe.Dim))
		for _, pt := range pts {
			buf = g.AppendCell(buf[:0], level, pt)
			c := occ[string(buf)]
			if c == nil {
				c = new(uint32)
				occ[string(buf)] = c
			}
			*c++
		}
	}
	if workers == 1 {
		for idx := 0; idx < levels; idx++ {
			fillOne(idx)
		}
		return occs
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= levels {
					return
				}
				fillOne(idx)
			}
		}()
	}
	wg.Wait()
	return occs
}

// VerifyFreshBuild checks the maintainer's live sketch against a fresh
// BuildSketch of pts on the wire encoding — the byte-identity invariant
// the churn tests pin, promoted to a runtime oracle recovery can invoke.
// pts must be the maintainer's current multiset.
func (m *Maintainer) VerifyFreshBuild(pts []points.Point) error {
	fresh, err := BuildSketch(m.params, pts)
	if err != nil {
		return fmt.Errorf("core: verify: fresh build: %w", err)
	}
	want, err := fresh.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: verify: %w", err)
	}
	got, err := m.Sketch().MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: verify: %w", err)
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("core: verify: maintained sketch (%d bytes) differs from fresh build (%d bytes) on %d points", len(got), len(want), len(pts))
	}
	return nil
}
