package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"robustset/internal/points"
	"robustset/internal/workload"
)

// TestMaintainerRemoveHeavyChurn drives the maintainer through long
// remove-heavy add/remove interleavings — the shape a replication node
// sees when mirroring a shrinking upstream — and asserts at checkpoints
// that the incremental sketch stays byte-identical to a fresh
// BuildSketch of the surviving multiset. Remove-heavy schedules stress
// the occurrence-index reuse paths (a slot freed by a remove must be the
// one the next add of that cell reuses) far harder than balanced churn.
func TestMaintainerRemoveHeavyChurn(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	p := testParams(u, 4, 17)
	for _, seed := range []uint64{1, 2, 3} {
		rng := rand.New(rand.NewPCG(seed, seed*7919))
		inst := genInstance(t, workload.Config{N: 400, Universe: u, Seed: seed + 100, Clusters: 4})

		m, err := NewMaintainer(p, inst.Bob)
		if err != nil {
			t.Fatal(err)
		}
		// Clustered points plus deliberate duplicates: multi-occupancy
		// cells are where occurrence indices can go wrong.
		current := points.Clone(inst.Bob)
		for i := 0; i < 40; i++ {
			dup := current[rng.IntN(len(current))].Clone()
			if err := m.Add(dup); err != nil {
				t.Fatal(err)
			}
			current = append(current, dup)
		}

		// VerifyFreshBuild is the byte-identity oracle this test pins;
		// recovery reuses it against snapshot+replay state (recover_test.go).
		checkpoint := func(step int) {
			if err := m.VerifyFreshBuild(current); err != nil {
				t.Fatalf("seed %d step %d (%d survivors): %v", seed, step, len(current), err)
			}
		}

		for step := 0; step < 1200; step++ {
			// 70% removes while points remain: the multiset shrinks from
			// 440 toward a small survivor core, crossing every cell's
			// occupancy through 1 and 0 repeatedly.
			if len(current) > 0 && rng.IntN(10) < 7 {
				i := rng.IntN(len(current))
				if err := m.Remove(current[i]); err != nil {
					t.Fatalf("seed %d step %d: remove: %v", seed, step, err)
				}
				current[i] = current[len(current)-1]
				current = current[:len(current)-1]
			} else {
				var pt points.Point
				if len(current) > 0 && rng.IntN(3) == 0 {
					pt = current[rng.IntN(len(current))].Clone() // re-add a duplicate
				} else {
					pt = points.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
				}
				if err := m.Add(pt); err != nil {
					t.Fatalf("seed %d step %d: add: %v", seed, step, err)
				}
				current = append(current, pt)
			}
			if step%150 == 149 {
				checkpoint(step)
			}
		}
		if m.Count() != len(current) {
			t.Fatalf("seed %d: count %d, want %d", seed, m.Count(), len(current))
		}
		checkpoint(1200)

		// Drain to empty: the final frontier of remove-heavy churn. The
		// empty maintained sketch must equal a fresh build of nothing.
		for len(current) > 0 {
			i := rng.IntN(len(current))
			if err := m.Remove(current[i]); err != nil {
				t.Fatalf("seed %d drain: %v", seed, err)
			}
			current[i] = current[len(current)-1]
			current = current[:len(current)-1]
		}
		checkpoint(-1)
		// Removing from the drained multiset must fail cleanly, not
		// corrupt the tables.
		if err := m.Remove(points.Point{1, 1}); !errors.Is(err, ErrNotPresent) {
			t.Fatalf("seed %d: remove from empty multiset: %v", seed, err)
		}
		checkpoint(-2)
	}
}
