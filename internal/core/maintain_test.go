package core

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"robustset/internal/points"
	"robustset/internal/workload"
)

func TestMaintainerMatchesRebuildBitwise(t *testing.T) {
	// The central property: after any add/remove sequence the maintained
	// sketch is bitwise identical (on the wire) to a fresh BuildSketch of
	// the final multiset.
	u := points.Universe{Dim: 2, Delta: 1 << 12}
	p := testParams(u, 4, 99)
	rng := rand.New(rand.NewPCG(1, 2))
	inst := genInstance(t, workload.Config{N: 100, Universe: u, Seed: 3})

	m, err := NewMaintainer(p, inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	current := points.Clone(inst.Bob)
	for step := 0; step < 300; step++ {
		if len(current) > 0 && rng.IntN(2) == 0 {
			i := rng.IntN(len(current))
			if err := m.Remove(current[i]); err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			current = append(current[:i], current[i+1:]...)
		} else {
			pt := points.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
			if err := m.Add(pt); err != nil {
				t.Fatalf("step %d: add: %v", step, err)
			}
			current = append(current, pt)
		}
	}
	if m.Count() != len(current) {
		t.Fatalf("count %d, want %d", m.Count(), len(current))
	}
	got, err := m.Sketch().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := BuildSketch(p, current)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rebuilt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("maintained sketch differs from rebuilt sketch")
	}
}

func TestMaintainerSketchReconciles(t *testing.T) {
	// End-to-end: a maintained sketch must drive Reconcile exactly like a
	// built one.
	u := points.Universe{Dim: 2, Delta: 1 << 14}
	p := testParams(u, 6, 5)
	inst := genInstance(t, workload.Config{
		N: 200, Universe: u, Seed: 7,
	})
	m, err := NewMaintainer(p, inst.Alice)
	if err != nil {
		t.Fatal(err)
	}
	// Alice's data drifts: she learns 4 new points and drops 4.
	rng := rand.New(rand.NewPCG(8, 8))
	alice := points.Clone(inst.Alice)
	for i := 0; i < 4; i++ {
		pt := points.Point{rng.Int64N(u.Delta), rng.Int64N(u.Delta)}
		if err := m.Add(pt); err != nil {
			t.Fatal(err)
		}
		alice = append(alice, pt)
	}
	for i := 0; i < 4; i++ {
		if err := m.Remove(alice[i]); err != nil {
			t.Fatal(err)
		}
	}
	alice = alice[4:]
	res, err := Reconcile(m.Sketch(), inst.Bob)
	if err != nil {
		t.Fatal(err)
	}
	if !points.EqualMultisets(res.SPrime, alice) {
		t.Fatal("reconciliation against maintained sketch wrong (exact regime)")
	}
}

func TestMaintainerRemoveAbsent(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 10}
	p := testParams(u, 2, 1)
	m, err := NewMaintainer(p, []points.Point{{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(points.Point{6, 6}); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("removing absent point: %v", err)
	}
	// The failed removal must not have corrupted the sketch.
	got, _ := m.Sketch().MarshalBinary()
	fresh, _ := BuildSketch(p, []points.Point{{5, 5}})
	want, _ := fresh.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatal("failed Remove mutated the sketch")
	}
	// Removing the real point then re-removing fails.
	if err := m.Remove(points.Point{5, 5}); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(points.Point{5, 5}); !errors.Is(err, ErrNotPresent) {
		t.Fatalf("double remove: %v", err)
	}
	if m.Count() != 0 {
		t.Fatalf("count %d, want 0", m.Count())
	}
}

func TestMaintainerDuplicates(t *testing.T) {
	u := points.Universe{Dim: 1, Delta: 1 << 8}
	p := testParams(u, 2, 1)
	m, err := NewMaintainer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	dup := points.Point{42}
	for i := 0; i < 5; i++ {
		if err := m.Add(dup); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := m.Remove(dup); err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}
	if err := m.Remove(dup); !errors.Is(err, ErrNotPresent) {
		t.Fatal("sixth remove should fail")
	}
	got, _ := m.Sketch().MarshalBinary()
	fresh, _ := BuildSketch(p, nil)
	want, _ := fresh.MarshalBinary()
	if !bytes.Equal(got, want) {
		t.Fatal("sketch not empty after symmetric add/remove")
	}
}

func TestMaintainerValidation(t *testing.T) {
	u := points.Universe{Dim: 2, Delta: 1 << 8}
	p := testParams(u, 2, 1)
	if _, err := NewMaintainer(Params{Universe: u}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	m, err := NewMaintainer(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(points.Point{-1, 0}); err == nil {
		t.Error("out-of-universe add accepted")
	}
	if err := m.Remove(points.Point{999, 0}); err == nil {
		t.Error("out-of-universe remove accepted")
	}
}
