package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"robustset/internal/iblt"
)

// Sketch wire format:
//
//	"RSK1" | dim u16 | delta u64 | seed u64 | diffBudget u32 |
//	hashCount u8 | minLevel u8 | maxLevel u8 | tableCapacity u32 |
//	count u32 | nTables u16 | nTables × ( u32 len | IBLT blob )
const (
	sketchMagic      = "RSK1"
	sketchHeaderSize = 4 + 2 + 8 + 8 + 4 + 1 + 1 + 1 + 4 + 4 + 2
)

// MarshalBinary encodes the sketch for transmission. The parameters ride
// along, so Bob reconstructs everything (grid, hash functions) from the
// message alone plus the shared universe conventions.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	p, err := s.Params.normalized()
	if err != nil {
		return nil, err
	}
	if p.MaxLevel > 255 || p.MinLevel > 255 {
		return nil, fmt.Errorf("core: levels [%d,%d] exceed wire format", p.MinLevel, p.MaxLevel)
	}
	out := make([]byte, 0, s.WireSize())
	out = append(out, sketchMagic...)
	out = binary.LittleEndian.AppendUint16(out, uint16(p.Universe.Dim))
	out = binary.LittleEndian.AppendUint64(out, uint64(p.Universe.Delta))
	out = binary.LittleEndian.AppendUint64(out, p.Seed)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.DiffBudget))
	out = append(out, byte(p.HashCount), byte(p.MinLevel), byte(p.MaxLevel))
	out = binary.LittleEndian.AppendUint32(out, uint32(p.TableCapacity))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.Count))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Tables)))
	for _, t := range s.Tables {
		blob, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < sketchHeaderSize || string(data[:4]) != sketchMagic {
		return errors.New("core: sketch: bad magic or short header")
	}
	p := Params{}
	p.Universe.Dim = int(binary.LittleEndian.Uint16(data[4:]))
	p.Universe.Delta = int64(binary.LittleEndian.Uint64(data[6:]))
	p.Seed = binary.LittleEndian.Uint64(data[14:])
	p.DiffBudget = int(binary.LittleEndian.Uint32(data[22:]))
	p.HashCount = int(data[26])
	p.MinLevel = int(data[27])
	p.MaxLevel = int(data[28])
	p.levelsSet = true
	p.TableCapacity = int(binary.LittleEndian.Uint32(data[29:]))
	count := int(binary.LittleEndian.Uint32(data[33:]))
	nTables := int(binary.LittleEndian.Uint16(data[37:]))
	p, err := p.normalized()
	if err != nil {
		return fmt.Errorf("core: sketch: %w", err)
	}
	if nTables != p.MaxLevel-p.MinLevel+1 {
		return fmt.Errorf("core: sketch: %d tables for level range [%d,%d]", nTables, p.MinLevel, p.MaxLevel)
	}
	ns := &Sketch{Params: p, Count: count}
	// The size of every conforming level table follows from the
	// parameters alone; computing it up front means a hostile header can
	// never trigger an allocation bigger than the bytes it actually sent.
	expectTable := iblt.WireSizeFor(
		iblt.RecommendedCells(p.TableCapacity, p.HashCount), KeyLen(p.Universe.Dim))
	off := sketchHeaderSize
	for i := 0; i < nTables; i++ {
		if off+4 > len(data) {
			return errors.New("core: sketch: truncated table header")
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if l != expectTable {
			return fmt.Errorf("core: sketch: level %d table is %d bytes, parameters imply %d", p.MinLevel+i, l, expectTable)
		}
		if off+l > len(data) {
			return errors.New("core: sketch: truncated table body")
		}
		t, err := levelTable(p, p.MinLevel+i, p.TableCapacity)
		if err != nil {
			return err
		}
		got := t.Clone() // placeholder replaced below by unmarshal
		if err := got.UnmarshalBinary(data[off : off+l]); err != nil {
			return fmt.Errorf("core: sketch: level %d: %w", p.MinLevel+i, err)
		}
		// The embedded table must match the config implied by the sketch
		// parameters, or Bob's locally built tables would not subtract.
		if got.Config() != t.Config() {
			return fmt.Errorf("core: sketch: level %d table config %+v does not match parameters (%+v)", p.MinLevel+i, got.Config(), t.Config())
		}
		off += l
		ns.Tables = append(ns.Tables, got)
	}
	if off != len(data) {
		return errors.New("core: sketch: trailing bytes")
	}
	*s = *ns
	return nil
}
