package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"robustset/internal/iblt"
)

// Sketch wire format:
//
//	"RSK1" | params (ParamsWireSize bytes, see Params.MarshalBinary) |
//	count u32 | nTables u16 | nTables × ( u32 len | IBLT blob )
const (
	sketchMagic      = "RSK1"
	sketchHeaderSize = 4 + ParamsWireSize + 4 + 2
)

// ParamsWireSize is the fixed length of the Params wire encoding:
// dim u16 | delta u64 | seed u64 | diffBudget u32 | hashCount u8 |
// minLevel u8 | maxLevel u8 | tableCapacity u32.
const ParamsWireSize = 2 + 8 + 8 + 4 + 1 + 1 + 1 + 4

// MarshalBinary encodes p in the fixed ParamsWireSize-byte wire format
// shared by the sketch header and the session handshake. The parameters
// are normalized first, so both endpoints decode identical defaults.
func (p Params) MarshalBinary() ([]byte, error) {
	p, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if p.MaxLevel > 255 || p.MinLevel > 255 {
		return nil, fmt.Errorf("core: levels [%d,%d] exceed wire format", p.MinLevel, p.MaxLevel)
	}
	return appendParams(make([]byte, 0, ParamsWireSize), p), nil
}

// UnmarshalBinary decodes MarshalBinary output, validating via the same
// normalization path that guards wire-derived sketch headers.
func (p *Params) UnmarshalBinary(data []byte) error {
	if len(data) != ParamsWireSize {
		return fmt.Errorf("core: params encoding is %d bytes, want %d", len(data), ParamsWireSize)
	}
	np, err := parseParams(data).normalized()
	if err != nil {
		return fmt.Errorf("core: params: %w", err)
	}
	*p = np
	return nil
}

// appendParams appends the wire encoding of normalized parameters.
func appendParams(dst []byte, p Params) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Universe.Dim))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Universe.Delta))
	dst = binary.LittleEndian.AppendUint64(dst, p.Seed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.DiffBudget))
	dst = append(dst, byte(p.HashCount), byte(p.MinLevel), byte(p.MaxLevel))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.TableCapacity))
	return dst
}

// parseParams decodes exactly ParamsWireSize bytes; the caller validates
// the result via normalized().
func parseParams(data []byte) Params {
	p := Params{}
	p.Universe.Dim = int(binary.LittleEndian.Uint16(data))
	p.Universe.Delta = int64(binary.LittleEndian.Uint64(data[2:]))
	p.Seed = binary.LittleEndian.Uint64(data[10:])
	p.DiffBudget = int(binary.LittleEndian.Uint32(data[18:]))
	p.HashCount = int(data[22])
	p.MinLevel = int(data[23])
	p.MaxLevel = int(data[24])
	p.levelsSet = true
	p.TableCapacity = int(binary.LittleEndian.Uint32(data[25:]))
	return p
}

// MarshalBinary encodes the sketch for transmission. The parameters ride
// along, so Bob reconstructs everything (grid, hash functions) from the
// message alone plus the shared universe conventions.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	p, err := s.Params.normalized()
	if err != nil {
		return nil, err
	}
	if p.MaxLevel > 255 || p.MinLevel > 255 {
		return nil, fmt.Errorf("core: levels [%d,%d] exceed wire format", p.MinLevel, p.MaxLevel)
	}
	out := make([]byte, 0, s.WireSize())
	out = append(out, sketchMagic...)
	out = appendParams(out, p)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.Count))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(s.Tables)))
	for _, t := range s.Tables {
		blob, err := t.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blob)))
		out = append(out, blob...)
	}
	return out, nil
}

// UnmarshalBinary parses MarshalBinary output.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	if len(data) < sketchHeaderSize || string(data[:4]) != sketchMagic {
		return errors.New("core: sketch: bad magic or short header")
	}
	p := parseParams(data[4:])
	count := int(binary.LittleEndian.Uint32(data[4+ParamsWireSize:]))
	nTables := int(binary.LittleEndian.Uint16(data[4+ParamsWireSize+4:]))
	p, err := p.normalized()
	if err != nil {
		return fmt.Errorf("core: sketch: %w", err)
	}
	if nTables != p.MaxLevel-p.MinLevel+1 {
		return fmt.Errorf("core: sketch: %d tables for level range [%d,%d]", nTables, p.MinLevel, p.MaxLevel)
	}
	ns := &Sketch{Params: p, Count: count}
	// The size of every conforming level table follows from the
	// parameters alone; computing it up front means a hostile header can
	// never trigger an allocation bigger than the bytes it actually sent.
	expectTable := iblt.WireSizeFor(
		iblt.RecommendedCells(p.TableCapacity, p.HashCount), KeyLen(p.Universe.Dim))
	off := sketchHeaderSize
	for i := 0; i < nTables; i++ {
		if off+4 > len(data) {
			return errors.New("core: sketch: truncated table header")
		}
		l := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if l != expectTable {
			return fmt.Errorf("core: sketch: level %d table is %d bytes, parameters imply %d", p.MinLevel+i, l, expectTable)
		}
		if off+l > len(data) {
			return errors.New("core: sketch: truncated table body")
		}
		got := new(iblt.Table) // UnmarshalBinary builds the table itself
		if err := got.UnmarshalBinary(data[off : off+l]); err != nil {
			return fmt.Errorf("core: sketch: level %d: %w", p.MinLevel+i, err)
		}
		// The embedded table must match the config implied by the sketch
		// parameters, or Bob's locally built tables would not subtract.
		if want := levelConfig(p, p.MinLevel+i, p.TableCapacity); got.Config() != want {
			return fmt.Errorf("core: sketch: level %d table config %+v does not match parameters (%+v)", p.MinLevel+i, got.Config(), want)
		}
		off += l
		ns.Tables = append(ns.Tables, got)
	}
	if off != len(data) {
		return errors.New("core: sketch: trailing bytes")
	}
	*s = *ns
	return nil
}
