package robustset_test

import (
	"bytes"
	"context"
	"net"
	"testing"

	"robustset"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

// ratelessExactPair builds an exact-regime instance: Bob's set plus k
// replaced points on Alice's side.
func ratelessExactPair(n, k int) (alice, bob []robustset.Point) {
	bob, _ = deterministicPair(31, n, 0, 0)
	alice = robustset.ClonePoints(bob)
	for i := 0; i < k; i++ {
		alice[i] = robustset.Point{int64(i)*37 + 5, int64(i)*53 + 9}
	}
	return alice, bob
}

// TestRatelessAgainstServer fetches a server dataset with the Rateless
// strategy and asserts (a) exact convergence and (b) that the rateless
// cell stream — not the doubling fallback — actually flowed, by spotting
// the cell-block wire magic in the received bytes.
func TestRatelessAgainstServer(t *testing.T) {
	alice, bob := ratelessExactPair(400, 20)
	params := robustset.Params{Universe: testU, Seed: 11, DiffBudget: 20}

	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	sess, err := robustset.NewSession(robustset.Rateless{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rec := &recordingRecvConn{Conn: conn}
	res, stats, err := sess.Fetch(context.Background(), rec, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(res.SPrime, alice) {
		t.Error("rateless fetch did not reproduce the dataset")
	}
	if stats.Total() == 0 {
		t.Error("no traffic accounted")
	}
	if !bytes.Contains(rec.received(), []byte("IBX1")) {
		t.Error("no rateless cell block on the wire; the server served the fallback path")
	}
}

// TestRatelessLegacyServerFallsBack is the cross-version test: a legacy,
// IBL2-only peer — speaking the pre-rateless handshake (bare accept, no
// feature echo) and only the doubling exact-IBLT protocol — must be
// negotiated down cleanly by a Rateless client, converging exactly with
// zero protocol errors on either side.
func TestRatelessLegacyServerFallsBack(t *testing.T) {
	alice, bob := ratelessExactPair(300, 12)
	params := robustset.Params{Universe: testU, Seed: 19, DiffBudget: 12}

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	ctx := context.Background()

	legacyDone := make(chan error, 1)
	go func() {
		// A faithful reproduction of the pre-rateless server session:
		// parse the hello (config byte 0 is the hash count; any further
		// bytes are ignored), send the bare accept, serve doubling tables.
		tr := transport.NewConn(c1)
		hello, err := protocol.RecvHello(ctx, tr)
		if err != nil {
			legacyDone <- err
			return
		}
		if hello.Strategy != protocol.StrategyExactIBLT {
			t.Errorf("legacy server saw strategy code %d, want %d (rateless must ride the exact-IBLT code)",
				hello.Strategy, protocol.StrategyExactIBLT)
		}
		hashCount := 0
		if len(hello.Config) >= 1 {
			hashCount = int(hello.Config[0])
		}
		if err := protocol.SendAccept(ctx, tr, params); err != nil {
			legacyDone <- err
			return
		}
		legacyDone <- protocol.RunExactIBLTAlice(ctx, tr, robustset.ExactConfig{
			Universe: params.Universe, Seed: params.Seed, HashCount: hashCount,
		}, alice)
	}()

	sess, err := robustset.NewSession(robustset.Rateless{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingRecvConn{Conn: c2}
	res, _, err := sess.Fetch(ctx, rec, bob)
	if err != nil {
		t.Fatalf("fallback fetch failed: %v", err)
	}
	if err := <-legacyDone; err != nil {
		t.Fatalf("legacy server session failed: %v", err)
	}
	if !robustset.EqualMultisets(res.SPrime, alice) {
		t.Error("fallback fetch did not reproduce the legacy server's set")
	}
	if bytes.Contains(rec.received(), []byte("IBX1")) {
		t.Error("cell blocks on the wire from a legacy server")
	}
}

// TestExactClientAgainstRatelessServer: the reverse skew — a client that
// never heard of the feature gets the classic doubling path from a new
// server, byte-compatible with the old handshake.
func TestExactClientAgainstRatelessServer(t *testing.T) {
	alice, bob := ratelessExactPair(300, 10)
	params := robustset.Params{Universe: testU, Seed: 23, DiffBudget: 10}

	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	sess, err := robustset.NewSession(robustset.ExactIBLT{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sess.FetchAddr(context.Background(), ln.Addr().String(), bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(res.SPrime, alice) {
		t.Error("exact client against new server did not converge")
	}
}

// recordingRecvConn captures every byte read from the connection.
type recordingRecvConn struct {
	net.Conn
	buf bytes.Buffer
}

func (r *recordingRecvConn) Read(b []byte) (int, error) {
	n, err := r.Conn.Read(b)
	r.buf.Write(b[:n])
	return n, err
}

func (r *recordingRecvConn) received() []byte { return r.buf.Bytes() }
