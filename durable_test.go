package robustset_test

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"robustset"
)

// durableParams is the shared configuration of the durability tests.
var durableParams = robustset.Params{
	Universe:   robustset.Universe{Dim: 2, Delta: 1 << 16},
	Seed:       77,
	DiffBudget: 16,
}

// churnPoints drives steps random add/remove batches (with duplicates)
// through a mutable dataset, returning the surviving multiset.
type batcher interface {
	AddBatch([]robustset.Point) error
	RemoveBatch([]robustset.Point) error
}

func churnPoints(t *testing.T, d batcher, current []robustset.Point, rng *rand.Rand, steps int) []robustset.Point {
	t.Helper()
	delta := durableParams.Universe.Delta
	for s := 0; s < steps; s++ {
		if len(current) > 4 && rng.IntN(10) < 4 {
			n := 1 + rng.IntN(3)
			batch := make([]robustset.Point, 0, n)
			for i := 0; i < n && len(current) > 0; i++ {
				j := rng.IntN(len(current))
				batch = append(batch, current[j])
				current[j] = current[len(current)-1]
				current = current[:len(current)-1]
			}
			if err := d.RemoveBatch(batch); err != nil {
				t.Fatalf("churn step %d: remove: %v", s, err)
			}
		} else {
			n := 1 + rng.IntN(4)
			batch := make([]robustset.Point, 0, n)
			for i := 0; i < n; i++ {
				var pt robustset.Point
				if len(current) > 0 && rng.IntN(4) == 0 {
					pt = current[rng.IntN(len(current))].Clone()
				} else {
					pt = robustset.Point{rng.Int64N(delta), rng.Int64N(delta)}
				}
				batch = append(batch, pt)
			}
			if err := d.AddBatch(batch); err != nil {
				t.Fatalf("churn step %d: add: %v", s, err)
			}
			current = append(current, batch...)
		}
	}
	return current
}

// TestPublishDurableRecovery is the recovery oracle at the server layer:
// a durable dataset is churned, the server closed, and a second server
// recovers the dataset from disk. WithServerRecoveryVerify makes the
// recovery itself assert sketch byte-identity against a fresh build —
// the promoted churn oracle — across snapshot intervals from
// snapshot-per-record to never.
func TestPublishDurableRecovery(t *testing.T) {
	for _, every := range []int{1, 4, 1000, -1} {
		t.Run(fmt.Sprintf("every=%d", every), func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewPCG(uint64(every)+99, 5))
			srv := robustset.NewServer(
				robustset.WithServerDataDir(dir),
				robustset.WithServerSnapshotEvery(every),
				robustset.WithServerRecoveryVerify(),
			)
			seed, _ := deterministicPair(41, 120, 0, 0)
			d, err := srv.PublishDurable("data", durableParams, seed)
			if err != nil {
				t.Fatal(err)
			}
			current := churnPoints(t, d, append([]robustset.Point(nil), seed...), rng, 150)
			if err := srv.Close(); err != nil {
				t.Fatal(err)
			}

			// Restart: the seed points are ignored, disk state wins.
			srv2 := robustset.NewServer(
				robustset.WithServerDataDir(dir),
				robustset.WithServerSnapshotEvery(every),
				robustset.WithServerRecoveryVerify(),
				WithTestLogger(t),
			)
			defer srv2.Close()
			d2, err := srv2.PublishDurable("data", durableParams, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !robustset.EqualMultisets(d2.Snapshot(), current) {
				t.Fatalf("recovered multiset differs: %d points, want %d", d2.Size(), len(current))
			}

			// The recovered dataset stays fully live: more churn, another
			// restart, still byte-identical.
			current = churnPoints(t, d2, current, rng, 60)
			// Drain to empty — the final snapshot interval stress.
			if err := d2.RemoveBatch(current); err != nil {
				t.Fatal(err)
			}
			if err := srv2.Close(); err != nil {
				t.Fatal(err)
			}
			srv3 := robustset.NewServer(
				robustset.WithServerDataDir(dir),
				robustset.WithServerSnapshotEvery(every),
				robustset.WithServerRecoveryVerify(),
			)
			defer srv3.Close()
			d3, err := srv3.PublishDurable("data", durableParams, nil)
			if err != nil {
				t.Fatal(err)
			}
			if d3.Size() != 0 {
				t.Fatalf("drained dataset recovered %d points", d3.Size())
			}
		})
	}
}

// TestPublishDurableRequiresDataDir pins the option contract.
func TestPublishDurableRequiresDataDir(t *testing.T) {
	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.PublishDurable("d", durableParams, nil); err == nil {
		t.Fatal("PublishDurable without a data dir succeeded")
	}
	if _, err := srv.PublishShardedDurable("d", durableParams, nil, 2); err == nil {
		t.Fatal("PublishShardedDurable without a data dir succeeded")
	}
}

// TestPublishShardedDurableRecovery churns a sharded durable dataset and
// restarts it: every shard recovers from its own WAL+snapshot directory.
func TestPublishShardedDurableRecovery(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(7, 13))
	srv := robustset.NewServer(
		robustset.WithServerDataDir(dir),
		robustset.WithServerSnapshotEvery(8),
		robustset.WithServerRecoveryVerify(),
	)
	seed, _ := deterministicPair(43, 200, 0, 0)
	sd, err := srv.PublishShardedDurable("pts", durableParams, seed, shards)
	if err != nil {
		t.Fatal(err)
	}
	current := churnPoints(t, sd, append([]robustset.Point(nil), seed...), rng, 200)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// One storage directory per shard.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != shards {
		t.Fatalf("%d storage directories, want %d", len(ents), shards)
	}
	for _, e := range ents {
		if _, err := os.Stat(filepath.Join(dir, e.Name(), "wal.log")); err != nil {
			t.Fatalf("shard dir %s has no WAL: %v", e.Name(), err)
		}
	}

	srv2 := robustset.NewServer(
		robustset.WithServerDataDir(dir),
		robustset.WithServerSnapshotEvery(8),
		robustset.WithServerRecoveryVerify(),
		WithTestLogger(t),
	)
	defer srv2.Close()
	sd2, err := srv2.PublishShardedDurable("pts", durableParams, nil, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(sd2.Snapshot(), current) {
		t.Fatalf("recovered sharded multiset differs: %d points, want %d", sd2.Size(), len(current))
	}
}

// TestDurableUnpublishFreesDir asserts Unpublish closes the storage
// engine so the directory can be reopened (e.g. republished).
func TestDurableUnpublishFreesDir(t *testing.T) {
	dir := t.TempDir()
	srv := robustset.NewServer(robustset.WithServerDataDir(dir), robustset.WithServerRecoveryVerify())
	defer srv.Close()
	seed, _ := deterministicPair(47, 50, 0, 0)
	d, err := srv.PublishDurable("data", durableParams, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Unpublish("data"); err != nil {
		t.Fatal(err)
	}
	// The retained handle rejects mutations (retired before closed).
	if err := d.Add(robustset.Point{1, 1}); !errors.Is(err, robustset.ErrUnknownDataset) {
		t.Fatalf("mutation on unpublished durable dataset: %v", err)
	}
	// Republishing recovers the persisted state.
	d2, err := srv.PublishDurable("data", durableParams, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(d2.Snapshot(), seed) {
		t.Fatalf("republished dataset lost state: %d points, want %d", d2.Size(), len(seed))
	}
}

// TestDurableRejoinDeltaProportional is the tentpole's acceptance
// scenario: a 3-node durable cluster converges, one node goes down,
// the survivors take writes, the node restarts from its data directory
// and rejoins — converging through ordinary rateless sessions in wire
// bytes proportional to what it missed, not to dataset size.
func TestDurableRejoinDeltaProportional(t *testing.T) {
	const nodes = 3
	common, perNode := clusterWorkload(nodes, 4000, 12)
	dirs := make([]string, nodes)
	srvs := make([]*robustset.Server, nodes)
	addrs := make([]string, nodes)
	start := func(i int, seedPts []robustset.Point) *robustset.Server {
		srv := robustset.NewServer(
			robustset.WithServerDataDir(dirs[i]),
			robustset.WithServerRecoveryVerify(),
			WithTestLogger(t),
		)
		if _, err := srv.PublishDurable("data", durableParams, seedPts); err != nil {
			t.Fatal(err)
		}
		addrs[i] = startServer(t, srv).String()
		return srv
	}
	for i := range srvs {
		dirs[i] = t.TempDir()
		srvs[i] = start(i, append(append([]robustset.Point(nil), common...), perNode[i]...))
	}
	newRep := func(i int) *robustset.Replicator {
		var peers []robustset.Peer
		for j := range srvs {
			if j != i {
				peers = append(peers, robustset.Peer{Name: fmt.Sprintf("n%d", j), Addr: addrs[j]})
			}
		}
		rep, err := robustset.NewReplicator(srvs[i], peers,
			robustset.WithReplicatorStrategy(robustset.Rateless{}),
			robustset.WithReplicatorWorkers(2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rep.Close() })
		return rep
	}
	reps := make([]*robustset.Replicator, nodes)
	for i := range reps {
		reps[i] = newRep(i)
	}
	cnodes := make([]*clusterNode, nodes)
	for i := range cnodes {
		cnodes[i] = &clusterNode{srv: srvs[i], addr: addrs[i]}
	}
	runConvergence(t, cnodes, reps, 5)

	// Node 2 goes down (flushes and closes its store with it).
	reps[2].Close()
	if err := srvs[2].Close(); err != nil {
		t.Fatal(err)
	}
	downSize := 0 // dataset size node 2 held when it went down

	// The survivors take a small delta of writes and re-converge.
	const missed = 25
	var delta []robustset.Point
	for j := 0; j < missed; j++ {
		delta = append(delta, robustset.Point{int64(20_000 + j), int64(j)})
	}
	if err := srvs[0].Dataset("data").AddBatch(delta); err != nil {
		t.Fatal(err)
	}
	runConvergence(t, cnodes[:2], reps[:2], 5)
	downSize = srvs[0].Dataset("data").Size() - missed

	// Restart node 2 from its directory: recovery must reproduce the
	// pre-downtime state (verified byte-identical via the oracle).
	srvs[2] = start(2, nil)
	cnodes[2].srv, cnodes[2].addr = srvs[2], addrs[2]
	if got := srvs[2].Dataset("data").Size(); got != downSize {
		t.Fatalf("recovered node holds %d points, held %d at shutdown", got, downSize)
	}
	reps[2] = newRep(2)

	// The rejoin round catches up on exactly the missed delta.
	st, err := reps[2].RunRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != missed {
		t.Fatalf("rejoin round applied %d points, missed %d", st.Added, missed)
	}
	rejoinBytes := st.Bytes

	// Delta-proportionality: the rejoin traffic must be far below a full
	// transfer of the dataset (16 encoded bytes per point, pre-framing).
	full := int64(srvs[0].Dataset("data").Size() * 16)
	if rejoinBytes >= full/2 {
		t.Fatalf("rejoin cost %d bytes, full transfer ≈ %d — not delta-proportional", rejoinBytes, full)
	}
	runConvergence(t, cnodes, reps, 5)
}
