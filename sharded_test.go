package robustset_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"robustset"
)

// TestShardedDatasetRoutingAndBatches asserts sharded publication
// preserves the multiset, routes mutations to stable shards, and batch
// mutations agree with per-point ones.
func TestShardedDatasetRouting(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 77, DiffBudget: 8}
	alice, _ := deterministicPair(17, 400, 0, 0)
	srv := robustset.NewServer()
	defer srv.Close()
	sd, err := srv.PublishSharded("pts", params, alice, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sd.NumShards() != 8 || srv.ShardedDataset("pts") != sd {
		t.Fatalf("sharded registration broken: %d shards", sd.NumShards())
	}
	if got := len(srv.Datasets()); got != 8 {
		t.Fatalf("server publishes %d datasets, want 8 shards", got)
	}
	if sd.Size() != len(alice) {
		t.Fatalf("Size() = %d, want %d", sd.Size(), len(alice))
	}
	if !robustset.EqualMultisets(sd.Snapshot(), alice) {
		t.Fatal("sharded snapshot does not equal the published multiset")
	}
	// Every point must live in the shard the router names.
	for _, pt := range alice[:50] {
		owner := sd.Shard(pt)
		found := false
		for _, cand := range owner.Snapshot() {
			if cand.Equal(pt) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %v not in its routed shard %q", pt, owner.Name())
		}
	}

	// Batch mutations: add a batch, remove it again; the multiset must
	// round-trip and sizes stay consistent.
	batch := []robustset.Point{{11, 22}, {33, 44}, {55, 66}, {11, 22}}
	if err := sd.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if sd.Size() != len(alice)+len(batch) {
		t.Fatalf("size %d after AddBatch, want %d", sd.Size(), len(alice)+len(batch))
	}
	if err := sd.RemoveBatch(batch); err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(sd.Snapshot(), alice) {
		t.Fatal("Add/RemoveBatch did not round-trip the sharded multiset")
	}

	// The base name is reserved: publishing it again in any form fails.
	if _, err := srv.Publish("pts", params, nil); err == nil {
		t.Error("base name re-published as plain dataset")
	}
	if _, err := srv.PublishSharded("pts", params, nil, 4); err == nil {
		t.Error("base name re-published as sharded dataset")
	}
}

// TestDatasetBatchSemantics pins the single-lock batch operations to the
// per-point ones, including mid-batch failure behaviour.
func TestDatasetBatchSemantics(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 3, DiffBudget: 4}
	alice, _ := deterministicPair(23, 100, 0, 0)
	srv := robustset.NewServer()
	defer srv.Close()
	d, err := srv.Publish("d", params, alice)
	if err != nil {
		t.Fatal(err)
	}
	batch := []robustset.Point{{1, 2}, {3, 4}, {5, 6}}
	if err := d.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if d.Size() != len(alice)+3 {
		t.Fatalf("size %d after AddBatch", d.Size())
	}
	// RemoveBatch with a missing point mid-batch is all-or-nothing: the
	// error names ErrNotPresent and the position, and nothing is removed —
	// the batch validates before it is logged and applied.
	err = d.RemoveBatch([]robustset.Point{{1, 2}, {999, 999}, {5, 6}})
	if !errors.Is(err, robustset.ErrNotPresent) {
		t.Fatalf("RemoveBatch error = %v, want ErrNotPresent", err)
	}
	if !strings.Contains(err.Error(), "point 1 of 3") {
		t.Errorf("batch error does not locate the failure: %v", err)
	}
	if d.Size() != len(alice)+3 {
		t.Errorf("size %d after rejected RemoveBatch, want %d (nothing applied)", d.Size(), len(alice)+3)
	}
	// A batch removing more occurrences than the dataset holds is caught
	// by the multiset-aware tally, even when each point exists.
	if err := d.RemoveBatch([]robustset.Point{{1, 2}, {1, 2}}); !errors.Is(err, robustset.ErrNotPresent) {
		t.Fatalf("over-removal of a present point = %v, want ErrNotPresent", err)
	}
	if d.Size() != len(alice)+3 {
		t.Errorf("size %d after rejected over-removal, want %d", d.Size(), len(alice)+3)
	}
	// AddBatch with an out-of-universe point rejects the whole batch too.
	err = d.AddBatch([]robustset.Point{{7, 8}, {-1, 0}})
	if err == nil {
		t.Fatal("AddBatch accepted an out-of-universe point")
	}
	if !strings.Contains(err.Error(), "nothing applied") {
		t.Errorf("batch error does not state all-or-nothing: %v", err)
	}
	if d.Size() != len(alice)+3 {
		t.Errorf("size %d after rejected AddBatch, want %d", d.Size(), len(alice)+3)
	}
	// The valid prefix of a rejected batch can be applied on its own.
	if err := d.RemoveBatch([]robustset.Point{{1, 2}, {5, 6}}); err != nil {
		t.Fatal(err)
	}
	if d.Size() != len(alice)+1 {
		t.Errorf("size %d after valid RemoveBatch, want %d", d.Size(), len(alice)+1)
	}
}

// TestServerUnpublish covers runtime retirement: the catalog entry
// disappears, retained handles reject mutations with ErrUnknownDataset,
// new sessions are rejected, and the name is free for re-publication.
func TestServerUnpublish(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 41, DiffBudget: 8}
	alice, bob := deterministicPair(31, 150, 4, 2)
	srv := robustset.NewServer(WithTestLogger(t))
	d, err := srv.Publish("gone", params, alice)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	if err := srv.Unpublish("missing"); !errors.Is(err, robustset.ErrUnknownDataset) {
		t.Fatalf("Unpublish of unknown name: %v", err)
	}
	if err := srv.Unpublish("gone"); err != nil {
		t.Fatal(err)
	}
	if srv.Dataset("gone") != nil || len(srv.Datasets()) != 0 {
		t.Fatal("dataset still in the catalog after Unpublish")
	}
	// The retained handle rejects mutations.
	if err := d.Add(robustset.Point{1, 1}); !errors.Is(err, robustset.ErrUnknownDataset) {
		t.Errorf("Add on retired dataset: %v", err)
	}
	if err := d.AddBatch([]robustset.Point{{1, 1}}); !errors.Is(err, robustset.ErrUnknownDataset) {
		t.Errorf("AddBatch on retired dataset: %v", err)
	}
	if err := d.RemoveBatch([]robustset.Point{alice[0]}); !errors.Is(err, robustset.ErrUnknownDataset) {
		t.Errorf("RemoveBatch on retired dataset: %v", err)
	}
	// A new session naming the dataset is rejected at the handshake.
	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("gone"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, _, err := sess.FetchAddr(ctx, addr.String(), bob); err == nil {
		t.Error("fetch of unpublished dataset succeeded")
	}
	// The name is free again.
	if _, err := srv.Publish("gone", params, alice); err != nil {
		t.Errorf("re-publish after Unpublish: %v", err)
	}
}

// TestServerUnpublishSharded retires a sharded dataset by base name: all
// shard datasets disappear and retained shard handles reject mutations.
func TestServerUnpublishSharded(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 43, DiffBudget: 8}
	alice, _ := deterministicPair(37, 200, 0, 0)
	srv := robustset.NewServer()
	defer srv.Close()
	sd, err := srv.PublishSharded("s", params, alice, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Unpublish("s"); err != nil {
		t.Fatal(err)
	}
	if len(srv.Datasets()) != 0 || srv.ShardedDataset("s") != nil {
		t.Fatal("shards survive Unpublish of the base name")
	}
	if err := sd.Add(robustset.Point{5, 5}); !errors.Is(err, robustset.ErrUnknownDataset) {
		t.Errorf("Add on retired sharded dataset: %v", err)
	}
}

// TestServerUnpublishRejectsIndividualShard asserts a single shard of a
// sharded dataset cannot be retired on its own — that would leave the
// parent half-dead — while an unrelated plain dataset that merely looks
// like a shard name stays unpublishable.
func TestServerUnpublishRejectsIndividualShard(t *testing.T) {
	params := robustset.Params{Universe: testU, Seed: 61, DiffBudget: 8}
	alice, _ := deterministicPair(59, 100, 0, 0)
	srv := robustset.NewServer()
	defer srv.Close()
	sd, err := srv.PublishSharded("s", params, alice, 4)
	if err != nil {
		t.Fatal(err)
	}
	shardName := sd.Shards()[0].Name()
	if err := srv.Unpublish(shardName); err == nil {
		t.Fatalf("Unpublish(%q) of an individual shard succeeded", shardName)
	}
	if srv.Dataset(shardName) == nil {
		t.Fatal("rejected shard unpublish still removed the shard")
	}
	if err := sd.Add(robustset.Point{1, 1}); err != nil {
		t.Errorf("sharded dataset unusable after rejected shard unpublish: %v", err)
	}
	// A plain dataset whose name merely parses like a shard of a
	// non-sharded base is a normal dataset.
	if _, err := srv.Publish("plain~0.2", params, alice); err != nil {
		t.Fatal(err)
	}
	if err := srv.Unpublish("plain~0.2"); err != nil {
		t.Errorf("Unpublish of shard-shaped plain dataset: %v", err)
	}
}
