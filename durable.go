package robustset

import (
	"fmt"
	"net/url"
	"path/filepath"
	"time"

	"robustset/internal/cluster"
	"robustset/internal/core"
	"robustset/internal/points"
	"robustset/internal/store"
)

// FsyncPolicy dictates when a durable dataset's write-ahead log is
// fsynced; see the store package constants for the trade-off.
type FsyncPolicy = store.FsyncPolicy

const (
	// SyncAlways fsyncs the log after every mutation batch (default).
	SyncAlways = store.SyncAlways
	// SyncNone leaves log flushing to the OS page cache.
	SyncNone = store.SyncNone
)

// WithServerDataDir roots the server's durable storage at dir: each
// dataset published with PublishDurable (or shard of
// PublishShardedDurable) keeps its WAL and snapshots in its own
// subdirectory. The directory is created on first use.
func WithServerDataDir(dir string) ServerOption {
	return func(s *Server) { s.dataDir = dir }
}

// WithServerFsync sets the WAL fsync policy for durable datasets.
// Default SyncAlways.
func WithServerFsync(p FsyncPolicy) ServerOption {
	return func(s *Server) { s.fsync = p }
}

// WithServerSnapshotEvery sets how many WAL records accumulate before a
// durable dataset snapshots its full state and drops the log. Smaller
// intervals mean faster recovery and more write amplification. 0 means
// the store default (4096); negative disables interval snapshots.
func WithServerSnapshotEvery(n int) ServerOption {
	return func(s *Server) { s.snapshotEvery = n }
}

// WithServerRecoveryVerify makes every recovery cross-check the adopted
// sketch against a fresh build of the recovered points — the byte-
// identity oracle the churn tests pin, at the cost of a full O(n·levels)
// build per recovered dataset. Off by default; recovery still trusts
// nothing unchecksummed either way.
func WithServerRecoveryVerify() ServerOption {
	return func(s *Server) { s.recoveryVerify = true }
}

// datasetDir maps a dataset name to its storage directory. Names may
// contain separators ("sensors/a") and shard suffixes; path-escaping
// keeps one flat, collision-free directory per dataset.
func (s *Server) datasetDir(name string) string {
	return filepath.Join(s.dataDir, url.PathEscape(name))
}

// PublishDurable is Publish backed by the WAL+snapshot storage engine
// under the server's data directory (WithServerDataDir, required).
//
// On a fresh directory the dataset starts from pts and immediately
// persists a first snapshot. If the directory already holds state — the
// server restarted — pts is IGNORED and the dataset is recovered from
// disk: snapshot loaded, its serialized sketch adopted without a
// rebuild, log tail replayed. The recovered replica then catches up on
// whatever it missed while down through ordinary reconciliation
// sessions (e.g. rejoining a Replicator), in cost proportional to the
// missed mutations.
func (s *Server) PublishDurable(name string, p Params, pts []Point) (*Dataset, error) {
	if err := validDatasetName(name); err != nil {
		return nil, err
	}
	if s.dataDir == "" {
		return nil, fmt.Errorf("robustset: publish durable %q: no data directory (use WithServerDataDir)", name)
	}
	d, err := s.openDurableDataset(name, p, pts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkNameFreeLocked(name); err != nil {
		d.closeStore()
		return nil, err
	}
	s.datasets[name] = d
	return d, nil
}

// PublishShardedDurable is PublishSharded with one WAL+snapshot pair per
// shard, each in its own directory under the server's data directory
// (e.g. "name~0.4/", "name~1.4/"). Shards recover independently on
// restart; pts seeds only shards whose directories are fresh.
func (s *Server) PublishShardedDurable(name string, p Params, pts []Point, nshards int) (*ShardedDataset, error) {
	if err := validDatasetName(name); err != nil {
		return nil, err
	}
	if s.dataDir == "" {
		return nil, fmt.Errorf("robustset: publish durable %q: no data directory (use WithServerDataDir)", name)
	}
	if err := validDatasetName(cluster.ShardName(name, nshards-1, nshards)); err != nil {
		return nil, fmt.Errorf("robustset: sharded dataset %q: shard names too long: %w", name, err)
	}
	sm, err := cluster.NewShardMap(nshards, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("robustset: publish sharded %q: %w", name, err)
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, fmt.Errorf("robustset: publish sharded %q: %w", name, err)
	}
	parts := sm.Partition(pts)
	sd := &ShardedDataset{name: name, m: sm, shards: make([]*Dataset, nshards)}
	closeAll := func(through int) {
		for i := 0; i < through; i++ {
			sd.shards[i].closeStore()
		}
	}
	for i, part := range parts {
		d, err := s.openDurableDataset(cluster.ShardName(name, i, nshards), p, part)
		if err != nil {
			closeAll(i)
			return nil, fmt.Errorf("robustset: publish sharded %q: shard %d: %w", name, i, err)
		}
		sd.shards[i] = d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkNameFreeLocked(name); err != nil {
		closeAll(nshards)
		return nil, err
	}
	for _, d := range sd.shards {
		if err := s.checkNameFreeLocked(d.name); err != nil {
			closeAll(nshards)
			return nil, err
		}
	}
	for _, d := range sd.shards {
		s.datasets[d.name] = d
	}
	s.sharded[name] = sd
	return sd, nil
}

// openDurableDataset opens (or recovers) one dataset's storage engine
// and builds the live Dataset around it.
func (s *Server) openDurableDataset(name string, p Params, pts []Point) (*Dataset, error) {
	pointSize := points.EncodedSize(p.Universe.Dim)
	eng, rec, err := store.Open(s.datasetDir(name), pointSize, store.Options{
		Fsync:         s.fsync,
		SnapshotEvery: s.snapshotEvery,
		Metrics:       s.metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("robustset: publish durable %q: %w", name, err)
	}
	fresh := rec.Snapshot == nil && len(rec.Tail) == 0 && eng.Seq() == 0
	var d *Dataset
	if fresh {
		d, err = newDataset(name, p, pts)
	} else {
		d, err = s.recoverDataset(name, p, rec)
	}
	if err != nil {
		eng.Close()
		return nil, err
	}
	d.store = eng
	// A fresh publish (or a recovery that replayed a log tail) persists a
	// snapshot now: initial points never pass through the WAL, so without
	// this a crash before the first interval would lose them.
	if fresh || len(rec.Tail) > 0 {
		d.mu.Lock()
		err := d.writeSnapshotLocked()
		d.mu.Unlock()
		if err != nil {
			eng.Close()
			return nil, fmt.Errorf("robustset: publish durable %q: initial snapshot: %w", name, err)
		}
	}
	return d, nil
}

// recoverDataset rebuilds the live dataset from recovered disk state:
// decode the snapshot's points, adopt its serialized sketch (rebuilding
// only the occupancy maps), then replay the log tail through the
// ordinary maintainer updates.
func (s *Server) recoverDataset(name string, p Params, rec *store.Recovered) (*Dataset, error) {
	start := time.Now()
	dim := p.Universe.Dim
	var pts []Point
	var m *Maintainer
	var err error
	if rec.Snapshot != nil {
		pts = make([]Point, 0, len(rec.Snapshot.Points))
		for _, enc := range rec.Snapshot.Points {
			pt, derr := points.Decode(enc, dim)
			if derr != nil {
				return nil, fmt.Errorf("robustset: recover %q: snapshot point: %w", name, derr)
			}
			pts = append(pts, pt)
		}
	}
	if rec.Snapshot != nil && len(rec.Snapshot.Sketch) > 0 {
		var sk Sketch
		if err := sk.UnmarshalBinary(rec.Snapshot.Sketch); err != nil {
			return nil, fmt.Errorf("robustset: recover %q: snapshot sketch: %w", name, err)
		}
		m, err = core.NewMaintainerFromSketch(p, pts, &sk)
	} else {
		m, err = NewMaintainer(p, pts)
	}
	if err != nil {
		return nil, fmt.Errorf("robustset: recover %q: %w", name, err)
	}
	counts := make(map[string]int, len(pts))
	for _, pt := range pts {
		counts[string(points.EncodeNew(pt))]++
	}
	d := &Dataset{name: name, maintainer: m, counts: counts, size: len(pts), store: store.Mem()}
	// Replay the tail through the normal maintainer paths; the dataset's
	// store is still the inert Mem engine, so nothing is re-logged.
	for _, r := range rec.Tail {
		for _, enc := range r.Points {
			pt, derr := points.Decode(enc, dim)
			if derr != nil {
				return nil, fmt.Errorf("robustset: recover %q: log record %d: %w", name, r.Seq, derr)
			}
			switch r.Op {
			case store.OpAdd:
				err = d.maintainer.Add(pt)
			case store.OpRemove:
				err = d.maintainer.Remove(pt)
			default:
				err = fmt.Errorf("unknown op %d", r.Op)
			}
			if err != nil {
				return nil, fmt.Errorf("robustset: recover %q: replaying log record %d: %w", name, r.Seq, err)
			}
			enc := string(enc)
			if r.Op == store.OpAdd {
				d.counts[enc]++
				d.size++
			} else {
				if d.counts[enc]--; d.counts[enc] == 0 {
					delete(d.counts, enc)
				}
				d.size--
			}
		}
	}
	if s.recoveryVerify {
		d.mu.Lock()
		cur := d.snapshotLocked()
		d.mu.Unlock()
		if err := d.maintainer.VerifyFreshBuild(cur); err != nil {
			return nil, fmt.Errorf("robustset: recover %q: %w", name, err)
		}
	}
	s.metrics.Counter("server_recovered_datasets_total").Inc()
	s.logf("robustset: server: recovered %q: %d points from snapshot, %d log records replayed, %d torn bytes truncated, %s",
		name, len(pts), len(rec.Tail), rec.TornBytes, time.Since(start).Round(time.Microsecond))
	return d, nil
}
