package robustset

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"robustset/internal/cluster"
	"robustset/internal/metrics"
	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/ranges"
	"robustset/internal/store"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// ErrServerClosed is returned by Server.Serve after Shutdown or Close.
var ErrServerClosed = errors.New("robustset: server closed")

// ErrUnknownDataset is relayed to clients that request a dataset the
// server does not publish.
var ErrUnknownDataset = errors.New("robustset: unknown dataset")

// Dataset is one named point multiset a Server publishes. It pairs the
// live points with an incrementally maintained sketch, so robust one-shot
// sessions are served from the Maintainer in O(sketch) time regardless of
// dataset size, while the other strategies snapshot the points. The
// multiset is stored as encoded-point occurrence counts, so Add and
// Remove cost O(levels) maintainer updates plus an O(1) map operation —
// no linear scans on high-churn datasets. All methods are safe for
// concurrent use with each other and with serving sessions.
//
// Every mutation writes through the dataset's storage engine before it
// applies ("append before apply"): a batch is validated up front, logged
// as one WAL record, then applied — so mutations are all-or-nothing and
// the log never holds a batch that fails to apply. Datasets published
// with Publish use the no-op in-memory engine (zero overhead); see
// Server.PublishDurable for the WAL+snapshot engine.
type Dataset struct {
	name string

	mu         sync.Mutex
	maintainer *Maintainer
	counts     map[string]int // encoded point → multiplicity
	size       int
	retired    bool        // set by Server.Unpublish; mutations and serving reject
	store      store.Store // write-ahead engine; store.Mem() unless durable
	// blobCache is the marshaled form of the maintained sketch, built
	// lazily and invalidated by every mutation. Concurrent sessions
	// serving an unchanged dataset share one immutable blob instead of
	// each re-marshaling the whole sketch under d.mu — the snapshot-free
	// concurrent read path. Callers must treat the blob as read-only.
	blobCache []byte
	// rtree is the ranged strategy's fingerprint tree over the multiset's
	// Morton keys. It is built lazily by the first ranged session and
	// from then on maintained incrementally through mutateLocked, so
	// ranged sessions on a high-churn dataset never pay an O(n log n)
	// rebuild. nil until a ranged session has run.
	rtree *ranges.Tree
}

// Name returns the dataset's published name.
func (d *Dataset) Name() string { return d.name }

// Params returns the dataset's normalized reconciliation parameters —
// the ones the server dictates to fetching clients.
func (d *Dataset) Params() Params {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maintainer.Params()
}

// Size returns the current multiset size.
func (d *Dataset) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// errRetired builds the rejection mutations and sessions see after
// Server.Unpublish retired the dataset.
func (d *Dataset) errRetired() error {
	return fmt.Errorf("%w: %q retired", ErrUnknownDataset, d.name)
}

// retire marks the dataset unpublished: every later mutation and serving
// session is rejected with ErrUnknownDataset.
func (d *Dataset) retire() {
	d.mu.Lock()
	d.retired = true
	d.rtree = nil // free the range tree; no future session can use it
	d.mu.Unlock()
}

// rangeView returns the live range-tree view a ranged session serves
// from, building the tree on first use. Each probe round runs under
// d.mu, so a round sees a write-atomic tree; between rounds the tree
// may advance with the dataset, which at worst re-opens a range in a
// later probe. The view rejects retired datasets like servePoints.
func (d *Dataset) rangeView() (protocol.TreeView, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retired {
		return nil, d.errRetired()
	}
	if d.rtree == nil {
		p := d.maintainer.Params()
		tree, err := protocol.BuildRangeTree(
			protocol.RangedConfig{Universe: p.Universe, Seed: p.Seed}, d.snapshotLocked())
		if err != nil {
			return nil, err
		}
		d.rtree = tree
	}
	return func(fn func(*ranges.Tree) error) error {
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.retired {
			return d.errRetired()
		}
		return fn(d.rtree)
	}, nil
}

// mutateLocked is the single write path behind Add/Remove/AddBatch/
// RemoveBatch, with d.mu held: validate the whole batch, append it to
// the storage engine as one record, then apply. Validation precedes the
// append so the WAL never holds a batch that fails to apply, which makes
// every mutation all-or-nothing: on error nothing was applied.
func (d *Dataset) mutateLocked(op store.Op, pts []Point) error {
	if d.retired {
		return d.errRetired()
	}
	u := d.maintainer.Params().Universe
	encs := make([][]byte, len(pts))
	if op == store.OpAdd {
		for i, pt := range pts {
			if !u.Contains(pt) {
				return fmt.Errorf("robustset: add batch to %q: point %d of %d: %v outside universe (nothing applied)",
					d.name, i, len(pts), pt)
			}
			encs[i] = points.EncodeNew(pt)
		}
	} else {
		// Multiset-aware tally: the batch may remove several occurrences
		// of one point, but never more than the dataset holds.
		need := make(map[string]int, len(pts))
		for i, pt := range pts {
			encs[i] = points.EncodeNew(pt)
			enc := string(encs[i])
			if need[enc]++; need[enc] > d.counts[enc] {
				return fmt.Errorf("robustset: remove batch from %q: point %d of %d: %w: %v not in dataset (nothing applied)",
					d.name, i, len(pts), ErrNotPresent, pt)
			}
		}
	}
	if err := d.store.Append(op, encs); err != nil {
		return fmt.Errorf("robustset: %q: log append: %w (nothing applied)", d.name, err)
	}
	// The batch validated and is on disk; application cannot fail short
	// of internal state corruption, which must not pass silently.
	for i, pt := range pts {
		enc := string(encs[i])
		if op == store.OpAdd {
			if err := d.maintainer.Add(pt); err != nil {
				panic("robustset: validated add failed: " + err.Error())
			}
			// A new occurrence takes the next free occurrence index, so the
			// range tree's key multiset stays dense per point.
			if d.rtree != nil {
				if err := d.rtree.Insert(ranges.EncodeKey(nil, pt, uint32(d.counts[enc]))); err != nil {
					panic("robustset: range tree insert failed: " + err.Error())
				}
			}
			d.counts[enc]++
			d.size++
		} else {
			if err := d.maintainer.Remove(pt); err != nil {
				panic("robustset: validated remove failed: " + err.Error())
			}
			// Removing the highest occurrence index keeps indexes dense.
			if d.rtree != nil {
				if err := d.rtree.Delete(ranges.EncodeKey(nil, pt, uint32(d.counts[enc]-1))); err != nil {
					panic("robustset: range tree delete failed: " + err.Error())
				}
			}
			if d.counts[enc]--; d.counts[enc] == 0 {
				delete(d.counts, enc)
			}
			d.size--
		}
	}
	d.blobCache = nil // the serialized-sketch cache is stale now
	d.maybeSnapshotLocked()
	return nil
}

// encodedStateLocked expands the occurrence counts into the flat list of
// encoded points a snapshot stores, with d.mu held.
func (d *Dataset) encodedStateLocked() [][]byte {
	out := make([][]byte, 0, d.size)
	for enc, c := range d.counts {
		for i := 0; i < c; i++ {
			out = append(out, []byte(enc))
		}
	}
	return out
}

// writeSnapshotLocked offers the engine the full state: every encoded
// point occurrence plus the serialized sketch, with d.mu held.
func (d *Dataset) writeSnapshotLocked() error {
	blob, err := d.sketchBlobLocked()
	if err != nil {
		return err
	}
	return d.store.WriteSnapshot(d.encodedStateLocked(), blob)
}

// maybeSnapshotLocked snapshots when the engine's log has grown past its
// interval. A failed snapshot is not fatal — the log still holds every
// record, and the next mutation retries; the engine counts the failure.
func (d *Dataset) maybeSnapshotLocked() {
	if d.store.ShouldSnapshot() {
		_ = d.writeSnapshotLocked()
	}
}

// closeStore flushes and closes the dataset's storage engine. Later
// mutations on a durable dataset fail; the in-memory engine is inert.
func (d *Dataset) closeStore() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.store.Close()
}

// Add inserts one point into the dataset, updating the maintained sketch
// in O(levels) time.
func (d *Dataset) Add(pt Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mutateLocked(store.OpAdd, []Point{pt})
}

// Remove deletes one occurrence of pt from the dataset. It returns
// ErrNotPresent if the dataset does not hold the point.
func (d *Dataset) Remove(pt Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mutateLocked(store.OpRemove, []Point{pt})
}

// AddBatch inserts every point in pts, taking the dataset lock once for
// the whole batch — the bulk-apply path replication rounds use, where a
// per-point lock round-trip would dominate the O(levels) sketch update.
// The batch is all-or-nothing: on error (any point outside the universe)
// nothing was applied.
func (d *Dataset) AddBatch(pts []Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mutateLocked(store.OpAdd, pts)
}

// RemoveBatch deletes one occurrence of every point in pts under a single
// acquisition of the dataset lock. The batch is all-or-nothing: on error
// (any point, counting batch-internal repeats, not present) nothing was
// applied.
func (d *Dataset) RemoveBatch(pts []Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mutateLocked(store.OpRemove, pts)
}

// snapshotLocked copies the current points with d.mu held.
func (d *Dataset) snapshotLocked() []Point {
	dim := d.maintainer.Params().Universe.Dim
	out := make([]Point, 0, d.size)
	for enc, c := range d.counts {
		p, err := points.Decode([]byte(enc), dim)
		if err != nil {
			// counts only ever holds EncodeNew output of validated points.
			panic("robustset: corrupt dataset encoding: " + err.Error())
		}
		out = append(out, p)
		for i := 1; i < c; i++ {
			out = append(out, p.Clone())
		}
	}
	return out
}

// Snapshot returns a copy of the current points. Order is unspecified:
// the protocols treat inputs as multisets.
func (d *Dataset) Snapshot() []Point {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

// servePoints is Snapshot for serving sessions: it rejects retired
// datasets, so a session that resolved the dataset just before an
// Unpublish fails with ErrUnknownDataset instead of serving stale data.
func (d *Dataset) servePoints() ([]Point, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retired {
		return nil, d.errRetired()
	}
	return d.snapshotLocked(), nil
}

// sketchBlob returns the marshaled maintained sketch, so a session can
// serve a consistent snapshot without holding the lock for the network
// round-trip. The blob comes from the dataset's cache: the first
// session after a mutation pays the marshal, every concurrent and later
// session on the unchanged dataset shares the same immutable bytes.
// Retired datasets are rejected like servePoints.
func (d *Dataset) sketchBlob() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.retired {
		return nil, d.errRetired()
	}
	return d.sketchBlobLocked()
}

// sketchBlobLocked returns the cached serialized sketch, rebuilding it
// if a mutation invalidated it. Caller holds d.mu; the returned blob is
// shared and must not be modified.
func (d *Dataset) sketchBlobLocked() ([]byte, error) {
	if d.blobCache == nil {
		blob, err := d.maintainer.Sketch().MarshalBinary()
		if err != nil {
			return nil, err
		}
		d.blobCache = blob
	}
	return d.blobCache, nil
}

// ShardedDataset is one logical point multiset published as K
// independent shard datasets (see Server.PublishSharded). Points route
// to shards by a deterministic hash of their canonical encoding, so two
// nodes publishing the same name under the same parameters agree on
// every point's shard and reconcile shard-by-shard. Mutations route to
// the owning shard; batch mutations group points per shard and take each
// shard lock once. All methods are safe for concurrent use.
type ShardedDataset struct {
	name   string
	m      *cluster.ShardMap
	shards []*Dataset
}

// Name returns the base name the sharded dataset was published under.
func (sd *ShardedDataset) Name() string { return sd.name }

// NumShards returns K.
func (sd *ShardedDataset) NumShards() int { return len(sd.shards) }

// Shards returns the per-shard datasets in shard order. The slice is a
// copy; the datasets are the live shards.
func (sd *ShardedDataset) Shards() []*Dataset {
	return slices.Clone(sd.shards)
}

// Shard returns the dataset that owns pt.
func (sd *ShardedDataset) Shard(pt Point) *Dataset {
	return sd.shards[sd.m.ShardOf(pt)]
}

// Params returns the shared reconciliation parameters of the shards.
func (sd *ShardedDataset) Params() Params { return sd.shards[0].Params() }

// Size returns the total multiset size across shards.
func (sd *ShardedDataset) Size() int {
	n := 0
	for _, d := range sd.shards {
		n += d.Size()
	}
	return n
}

// Add inserts one point into its owning shard.
func (sd *ShardedDataset) Add(pt Point) error { return sd.Shard(pt).Add(pt) }

// Remove deletes one occurrence of pt from its owning shard.
func (sd *ShardedDataset) Remove(pt Point) error { return sd.Shard(pt).Remove(pt) }

// partition groups pts by owning shard, preserving order within a shard.
func (sd *ShardedDataset) partition(pts []Point) [][]Point {
	return sd.m.Partition(pts)
}

// AddBatch inserts every point, grouped so each owning shard's lock is
// taken once. Shards are independent, so a failure in one shard's batch
// does not undo the others; the returned error names the failing shard.
func (sd *ShardedDataset) AddBatch(pts []Point) error {
	for i, part := range sd.partition(pts) {
		if len(part) == 0 {
			continue
		}
		if err := sd.shards[i].AddBatch(part); err != nil {
			return err
		}
	}
	return nil
}

// RemoveBatch deletes one occurrence of every point, grouped per shard
// like AddBatch.
func (sd *ShardedDataset) RemoveBatch(pts []Point) error {
	for i, part := range sd.partition(pts) {
		if len(part) == 0 {
			continue
		}
		if err := sd.shards[i].RemoveBatch(part); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns a copy of the full multiset across all shards. Order
// is unspecified.
func (sd *ShardedDataset) Snapshot() []Point {
	var out []Point
	for _, d := range sd.shards {
		out = append(out, d.Snapshot()...)
	}
	return out
}

// Server reconciles many named datasets with many concurrent clients.
// Each accepted connection is one session: the client opens with a
// handshake naming a dataset and a strategy (Session.Fetch with
// WithDataset does this), the server replies with the dataset's
// parameters, and the chosen protocol runs. Sessions run in their own
// goroutines; Shutdown stops accepting and drains them.
//
//	srv := robustset.NewServer()
//	srv.Publish("sensors/a", paramsA, ptsA)
//	srv.Publish("sensors/b", paramsB, ptsB)
//	go srv.Serve(ln)
//	...
//	srv.Shutdown(ctx)
type Server struct {
	logf           func(format string, args ...any)
	maxMsg         int
	sessionTimeout time.Duration
	muxOff         bool
	maxStreams     int
	metrics        *metrics.Registry // nil-safe no-op when unset
	traces         *TraceLog         // nil-safe no-op when unset
	debugLn        net.Listener      // metrics debug endpoint; closed on Shutdown/Close
	debugDone      chan struct{}     // closed when the debug endpoint goroutine exits
	dataDir        string            // root of durable dataset storage ("" = none)
	fsync          FsyncPolicy
	snapshotEvery  int
	recoveryVerify bool

	mu         sync.Mutex
	datasets   map[string]*Dataset
	sharded    map[string]*ShardedDataset
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	inShutdown atomic.Bool
	wg         sync.WaitGroup

	// baseCtx is cancelled when sessions must abort (Close, or Shutdown
	// whose context expired). drainCtx is cancelled earlier, when
	// Shutdown begins: multiplexed connections stop accepting new
	// streams but in-flight sessions keep their baseCtx lifetime.
	baseCtx     context.Context
	cancelBase  context.CancelFunc
	drainCtx    context.Context
	cancelDrain context.CancelFunc
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerLogger directs per-session error reporting (a printf-style
// function, e.g. log.Printf). Default: discard.
func WithServerLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithServerMaxMessageSize caps a single protocol message on every
// session, exactly like the Session option WithMaxMessageSize.
func WithServerMaxMessageSize(n int) ServerOption {
	return func(s *Server) { s.maxMsg = n }
}

// DefaultSessionTimeout bounds one server session (handshake through
// final message) unless overridden with WithServerSessionTimeout. It
// exists so a client that connects and goes silent cannot pin a session
// goroutine and connection forever.
const DefaultSessionTimeout = 2 * time.Minute

// WithServerSessionTimeout overrides the per-session deadline
// (DefaultSessionTimeout). d <= 0 disables the timeout entirely; only do
// that behind infrastructure that bounds connection lifetimes itself.
// On a multiplexed connection the timeout bounds each stream's session,
// not the connection: a pipelining client legitimately holds one
// connection open across many rounds.
func WithServerSessionTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.sessionTimeout = d }
}

// WithServerNoMux disables connection multiplexing: a MUX1 hello is
// treated as a bad handshake and the connection closed, exactly like a
// pre-mux server — which makes the option double as the legacy-peer
// simulator in compatibility tests and as an operational off-switch.
// Clients downgrade to connection-per-session automatically.
func WithServerNoMux() ServerOption {
	return func(s *Server) { s.muxOff = true }
}

// WithServerMaxStreamsPerConn bounds the sessions concurrently in
// flight on one multiplexed connection; streams opened beyond the bound
// are reset, which a well-behaved client surfaces as backpressure.
// Default: transport.DefaultMuxMaxStreams (64).
func WithServerMaxStreamsPerConn(n int) ServerOption {
	return func(s *Server) { s.maxStreams = n }
}

// WithServerMetrics directs the server's instrumentation — per-dataset
// session counts, connection bytes, mux stream counts, decode failures,
// session latency histograms — into m (see Metrics for the names).
func WithServerMetrics(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m.registry() }
}

// WithServerMetricsListener serves the observability endpoints on ln for
// the server's lifetime: /metrics in Prometheus text exposition format,
// /debug/vars as the expvar-style JSON document, and — when the server
// also has WithServerTracing — /debug/traces as the trace log's JSON.
// Unlike a hand-rolled `go m.Serve(ln)`, the listener is owned by the
// server: Shutdown and Close close it and reap its handler goroutines,
// so a server torn down cleanly leaks neither the listener nor the
// endpoint's connections. Combine with WithServerMetrics (in any order)
// to expose the same registry the server instruments.
func WithServerMetricsListener(ln net.Listener) ServerOption {
	return func(s *Server) { s.debugLn = ln }
}

// WithServerTracing records a SessionTrace for every served session into
// tl: phase spans, estimated-vs-actual difference, per-frame-type wire
// bytes. Completed traces also feed the registry's per-strategy session
// families (session_*_total), so /metrics exposes difference and round
// distributions without retaining individual traces. Tracing allocates
// per session; leave it unset on latency-critical deployments and attach
// it when diagnosing.
func WithServerTracing(tl *TraceLog) ServerOption {
	return func(s *Server) { s.traces = tl }
}

// NewServer builds an empty server; Publish datasets, then Serve.
func NewServer(opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	drainCtx, cancelDrain := context.WithCancel(ctx)
	s := &Server{
		logf:           func(string, ...any) {},
		sessionTimeout: DefaultSessionTimeout,
		datasets:       make(map[string]*Dataset),
		sharded:        make(map[string]*ShardedDataset),
		listeners:      make(map[net.Listener]struct{}),
		conns:          make(map[net.Conn]struct{}),
		baseCtx:        ctx,
		cancelBase:     cancel,
		drainCtx:       drainCtx,
		cancelDrain:    cancelDrain,
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.debugLn != nil {
		// The serve helper reaps its handler connections when the
		// listener closes, so closeDebugListener is a complete teardown.
		s.debugDone = make(chan struct{})
		go func(ln net.Listener, h http.Handler) {
			defer close(s.debugDone)
			_ = metrics.ServeHandler(ln, h)
		}(s.debugLn, s.debugHandler())
	}
	return s
}

// debugHandler composes the debug listener's endpoints: /debug/traces
// from the trace log (when tracing is on), everything else — /metrics,
// /debug/vars — from the metrics registry.
func (s *Server) debugHandler() http.Handler {
	reg := s.metrics.Handler()
	if s.traces == nil {
		return reg
	}
	tr := s.traces.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/debug/traces" {
			tr.ServeHTTP(w, req)
			return
		}
		reg.ServeHTTP(w, req)
	})
}

// closeDebugListener stops the metrics debug endpoint, waiting for its
// serving goroutine (and handler connections) to wind down.
func (s *Server) closeDebugListener() {
	if s.debugLn == nil {
		return
	}
	s.debugLn.Close()
	<-s.debugDone
}

// newDataset builds an unregistered Dataset with its maintained sketch.
func newDataset(name string, p Params, pts []Point) (*Dataset, error) {
	m, err := NewMaintainer(p, pts)
	if err != nil {
		return nil, fmt.Errorf("robustset: publish %q: %w", name, err)
	}
	counts := make(map[string]int, len(pts))
	for _, pt := range pts {
		counts[string(points.EncodeNew(pt))]++
	}
	return &Dataset{name: name, maintainer: m, counts: counts, size: len(pts), store: store.Mem()}, nil
}

// validDatasetName rejects names the wire handshake cannot carry.
func validDatasetName(name string) error {
	if name == "" || len(name) > protocol.MaxDatasetName {
		return fmt.Errorf("robustset: dataset name %q invalid (1..%d bytes)", name, protocol.MaxDatasetName)
	}
	return nil
}

// Publish registers a named dataset and builds its maintained sketch.
// The points are copied. Publishing a name twice is an error.
func (s *Server) Publish(name string, p Params, pts []Point) (*Dataset, error) {
	if err := validDatasetName(name); err != nil {
		return nil, err
	}
	d, err := newDataset(name, p, pts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkNameFreeLocked(name); err != nil {
		return nil, err
	}
	s.datasets[name] = d
	return d, nil
}

// checkNameFreeLocked reports a collision with any published dataset or
// sharded-dataset base name. Caller holds s.mu.
func (s *Server) checkNameFreeLocked(name string) error {
	if _, dup := s.datasets[name]; dup {
		return fmt.Errorf("robustset: dataset %q already published", name)
	}
	if _, dup := s.sharded[name]; dup {
		return fmt.Errorf("robustset: dataset %q already published (sharded)", name)
	}
	return nil
}

// PublishSharded registers a dataset split across nshards shard datasets,
// each backed by its own Maintainer. Points hash into shards by their
// canonical encoding under a map derived from p.Seed, so every node that
// publishes the same name with the same parameters and shard count
// partitions identically and the shards reconcile independently — a
// replication round's cost then scales with the delta per shard, and the
// shards of one dataset reconcile concurrently. Each shard is published
// under ShardName(name, i, nshards) ("name~i.k") and is fetchable like
// any other dataset; the base name itself is reserved and not fetchable.
func (s *Server) PublishSharded(name string, p Params, pts []Point, nshards int) (*ShardedDataset, error) {
	if err := validDatasetName(name); err != nil {
		return nil, err
	}
	if err := validDatasetName(cluster.ShardName(name, nshards-1, nshards)); err != nil {
		return nil, fmt.Errorf("robustset: sharded dataset %q: shard names too long: %w", name, err)
	}
	sm, err := cluster.NewShardMap(nshards, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("robustset: publish sharded %q: %w", name, err)
	}
	if err := p.Universe.CheckSet(pts); err != nil {
		return nil, fmt.Errorf("robustset: publish sharded %q: %w", name, err)
	}
	parts := sm.Partition(pts)
	sd := &ShardedDataset{name: name, m: sm, shards: make([]*Dataset, nshards)}
	for i, part := range parts {
		d, err := newDataset(cluster.ShardName(name, i, nshards), p, part)
		if err != nil {
			return nil, fmt.Errorf("robustset: publish sharded %q: shard %d: %w", name, i, err)
		}
		sd.shards[i] = d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkNameFreeLocked(name); err != nil {
		return nil, err
	}
	for _, d := range sd.shards {
		if err := s.checkNameFreeLocked(d.name); err != nil {
			return nil, err
		}
	}
	for _, d := range sd.shards {
		s.datasets[d.name] = d
	}
	s.sharded[name] = sd
	return sd, nil
}

// Unpublish retires a dataset (or a sharded dataset by its base name) at
// runtime: the name disappears from the catalog immediately, later
// handshakes are rejected, and in-flight sessions that already resolved
// the dataset fail with ErrUnknownDataset instead of serving retired
// data. Mutations through retained Dataset handles are rejected the same
// way. Unpublishing an unknown name returns ErrUnknownDataset.
func (s *Server) Unpublish(name string) error {
	s.mu.Lock()
	var retire []*Dataset
	if sd, ok := s.sharded[name]; ok {
		delete(s.sharded, name)
		for _, d := range sd.shards {
			delete(s.datasets, d.name)
			retire = append(retire, d)
		}
	} else if d, ok := s.datasets[name]; ok {
		// A single shard of a sharded dataset cannot be retired on its
		// own: it would leave the ShardedDataset half-dead — mutations to
		// ~1/K of points failing, replicators silently diverging on that
		// shard. Retire the base name instead.
		if base, i, k, isShard := cluster.ParseShardName(name); isShard {
			if sd := s.sharded[base]; sd != nil && k == len(sd.shards) && sd.shards[i] == d {
				s.mu.Unlock()
				return fmt.Errorf("robustset: %q is shard %d of sharded dataset %q; unpublish the base name", name, i, base)
			}
		}
		delete(s.datasets, name)
		retire = append(retire, d)
	}
	s.mu.Unlock()
	if len(retire) == 0 {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	for _, d := range retire {
		d.retire()
		if err := d.closeStore(); err != nil {
			s.logf("robustset: server: unpublish %q: closing store: %v", d.Name(), err)
		}
	}
	return nil
}

// ShardedDataset returns a sharded dataset by its base name, or nil.
func (s *Server) ShardedDataset(name string) *ShardedDataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharded[name]
}

// Dataset returns a published dataset, or nil.
func (s *Server) Dataset(name string) *Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasets[name]
}

// Datasets returns the published dataset names in sorted order.
func (s *Server) Datasets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Serve accepts connections on ln and runs one session per connection
// until Shutdown or Close. It always returns a non-nil error; after a
// clean shutdown the error is ErrServerClosed. Serve may be called on
// multiple listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	if !s.trackListener(ln) {
		ln.Close()
		return ErrServerClosed
	}
	defer s.untrackListener(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		if !s.trackConn(conn) {
			conn.Close()
			return ErrServerClosed
		}
		go func() {
			defer s.untrackConn(conn)
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on the TCP address addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// handle runs one connection: it reads the opening message and
// dispatches to the single-session path (legacy clients) or the MUX1
// multiplexed path (one connection, many concurrent sessions).
func (s *Server) handle(conn net.Conn) {
	s.metrics.Counter("server_conns_total").Inc()
	// The mux variant of the limit: if the opening negotiates MUX1 the
	// same transport becomes the frame carrier, and a maximal legal
	// protocol message must still fit with its mux header.
	t := transport.NewMuxConnLimit(conn, s.maxMsg)
	defer func() {
		st := t.Stats()
		s.metrics.Counter("server_bytes_in_total").Add(st.BytesRecv)
		s.metrics.Counter("server_bytes_out_total").Add(st.BytesSent)
	}()
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	if s.sessionTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.sessionTimeout)
	}
	defer cancel()
	op, err := protocol.RecvOpening(ctx, t)
	if err != nil {
		s.logf("robustset: server: %v: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	if op.Mux {
		if s.muxOff {
			// Behave exactly like a pre-mux build: unknown opening, close.
			s.logf("robustset: server: %v: mux hello refused (multiplexing disabled)", conn.RemoteAddr())
			return
		}
		if err := protocol.SendMuxAccept(ctx, t, transport.DefaultMuxWindow); err != nil {
			s.logf("robustset: server: %v: mux accept: %v", conn.RemoteAddr(), err)
			return
		}
		// The handshake deadline must not outlive the negotiation: a
		// multiplexed connection is long-lived by design.
		cancel()
		s.serveMux(conn, t, op.MuxHello)
		return
	}
	s.serveSession(ctx, t, op.Hello, conn.RemoteAddr())
}

// serveMux drives one multiplexed connection: accept streams until the
// server drains or the connection dies, one session per stream, each
// with its own timeout.
func (s *Server) serveMux(conn net.Conn, t transport.Transport, mh protocol.MuxHello) {
	s.metrics.Counter("server_mux_conns_total").Inc()
	m := transport.NewMux(t, false, transport.MuxConfig{
		RecvWindow: transport.DefaultMuxWindow,
		SendWindow: int(mh.Window),
		MaxStreams: s.maxStreams,
		OnDecodeFailure: func(error) {
			s.metrics.Counter("mux_decode_failures_total").Inc()
		},
	})
	defer m.Close()
	var wg sync.WaitGroup
	streams := int64(0)
	for {
		// drainCtx (not baseCtx): Shutdown stops new streams immediately
		// while in-flight sessions drain on their own contexts.
		st, err := m.Accept(s.drainCtx)
		if err != nil {
			break
		}
		streams++
		s.metrics.Counter("server_mux_streams_total").Inc()
		s.metrics.Gauge("server_mux_streams_per_conn_max").SetMax(streams)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			ctx := s.baseCtx
			cancel := context.CancelFunc(func() {})
			if s.sessionTimeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, s.sessionTimeout)
			}
			defer cancel()
			hello, err := protocol.RecvHello(ctx, st)
			if err != nil {
				s.logf("robustset: server: %v: stream %d: bad handshake: %v", conn.RemoteAddr(), st.ID(), err)
				return
			}
			s.serveSession(ctx, st, hello, conn.RemoteAddr())
		}()
	}
	wg.Wait()
}

// serveSession answers one already-opened session hello over t — a
// whole legacy connection or one mux stream, identically.
func (s *Server) serveSession(ctx context.Context, t transport.Transport, hello protocol.Hello, remote net.Addr) {
	start := time.Now()
	s.metrics.Counter("server_sessions_total").Inc()
	var tr *trace.Trace
	if s.traces != nil {
		// Tracing is wired per session, not per server: the nil-trace path
		// costs nothing, so untraced deployments keep their hot path.
		tr = trace.New("server")
		tr.Label(hello.Dataset, "", remote.String())
		ctx = trace.NewContext(ctx, tr)
	}
	err := s.runSession(ctx, t, hello, remote)
	if err != nil {
		s.metrics.Counter("server_session_errors_total").Inc()
	}
	s.metrics.Histogram("server_session_seconds").Observe(time.Since(start))
	if tr != nil {
		tr.Finish(err)
		snap := tr.Snapshot()
		s.traces.add(snap)
		s.recordSessionMetrics(snap)
	}
}

// recordSessionMetrics folds one completed trace into the registry's
// per-strategy session families, so /metrics carries difference sizes,
// round counts and wire attribution in aggregate even though individual
// traces age out of the ring. Label values come from the negotiated
// strategy and the protocol's registered frame names — both closed sets —
// never from untrusted client input.
func (s *Server) recordSessionMetrics(snap *SessionTrace) {
	strat := snap.Strategy
	if strat == "" {
		return // the session failed before a strategy was negotiated
	}
	for _, st := range []string{"estimated_diff", "actual_diff", "rounds", "decode_retries"} {
		if v, ok := snap.Stat(st); ok {
			s.metrics.Counter("session_" + st + "_total:strategy=" + strat).Add(v)
		}
	}
	for _, f := range snap.Frames {
		s.metrics.Counter("session_wire_bytes_total:frame=" + f.Type + ",dir=" + f.Dir).Add(f.Bytes)
	}
}

// runSession performs the dataset/strategy dispatch and the protocol
// run, logging and returning the first failure.
func (s *Server) runSession(ctx context.Context, t transport.Transport, hello protocol.Hello, remote net.Addr) error {
	d := s.Dataset(hello.Dataset)
	if d == nil {
		err := fmt.Errorf("%w: %q", ErrUnknownDataset, hello.Dataset)
		_ = protocol.RejectHello(ctx, t, err)
		s.logf("robustset: server: %v: unknown dataset %q", remote, hello.Dataset)
		return err
	}
	// The per-dataset counter is keyed only after the name resolved:
	// registry labels must come from the published catalog, never from
	// an untrusted hello (which could otherwise grow the registry
	// without bound).
	s.metrics.Counter("server_sessions_total:" + d.Name()).Inc()
	strat, err := strategyFromCode(hello.Strategy, hello.Config)
	if err != nil {
		_ = protocol.RejectHello(ctx, t, err)
		s.logf("robustset: server: %v: %v", remote, err)
		return err
	}
	// Labels come from the negotiated strategy, a closed set — never from
	// raw hello bytes.
	trace.FromContext(ctx).Label("", strat.Name(), "")
	params := d.Params()
	// Echo the features the negotiated strategy honors, so the client
	// knows the feature protocol (rather than the legacy fallback) will
	// be spoken on this session.
	var feats byte
	if _, ok := strat.(Rateless); ok {
		feats = protocol.FeatureRateless
	}
	if _, ok := strat.(Ranged); ok {
		feats = protocol.FeatureRanged
	}
	if err := protocol.SendAcceptFeatures(ctx, t, params, feats); err != nil {
		s.logf("robustset: server: %v: accept: %v", remote, err)
		return err
	}
	// Robust one-shot sessions serve the maintained sketch directly —
	// O(sketch size) per session instead of O(n·levels).
	if _, oneShot := strat.(Robust); oneShot {
		blob, err := d.sketchBlob()
		if err != nil {
			// The dataset was retired between the handshake and the push;
			// relay the rejection so the client fails with a RemoteError.
			_ = protocol.SendError(ctx, t, err)
			s.logf("robustset: server: %v: dataset %q (%s): %v", remote, d.Name(), strat.Name(), err)
			return err
		}
		if err := protocol.RunPushBlobAlice(ctx, t, blob); err != nil {
			s.logf("robustset: server: %v: dataset %q (%s): %v", remote, d.Name(), strat.Name(), err)
			return err
		}
		return nil
	}
	// Ranged sessions serve from the dataset's incrementally maintained
	// fingerprint tree — no O(n) snapshot, and concurrent mutations only
	// re-open ranges in later probe rounds.
	if r, ok := strat.(Ranged); ok {
		view, err := d.rangeView()
		if err != nil {
			_ = protocol.SendError(ctx, t, err)
			s.logf("robustset: server: %v: dataset %q (%s): %v", remote, d.Name(), strat.Name(), err)
			return err
		}
		cfg := protocol.RangedConfig{
			Universe: params.Universe, Seed: params.Seed,
			Branch: r.Branch, ItemLimit: r.ItemLimit,
		}
		if err := protocol.RunRangedAliceView(ctx, t, cfg, view); err != nil {
			s.logf("robustset: server: %v: dataset %q (%s): %v", remote, d.Name(), strat.Name(), err)
			return err
		}
		return nil
	}
	pts, err := d.servePoints()
	if err != nil {
		_ = protocol.SendError(ctx, t, err)
		s.logf("robustset: server: %v: dataset %q (%s): %v", remote, d.Name(), strat.Name(), err)
		return err
	}
	if err := strat.serve(ctx, t, params, pts); err != nil {
		s.logf("robustset: server: %v: dataset %q (%s): %v", remote, d.Name(), strat.Name(), err)
		return err
	}
	return nil
}

func (s *Server) trackListener(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	s.listeners[ln] = struct{}{}
	return true
}

func (s *Server) untrackListener(ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, ln)
}

func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// closeListeners stops accepting; safe to call repeatedly.
func (s *Server) closeListeners() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ln := range s.listeners {
		ln.Close()
	}
}

// closeConns force-closes every in-flight session connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

// closeStores flushes and closes every published dataset's storage
// engine — the final fsync of a durable server's life. Mutations on
// durable datasets fail afterwards; in-memory datasets are unaffected.
func (s *Server) closeStores() {
	s.mu.Lock()
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.Unlock()
	for _, d := range ds {
		if err := d.closeStore(); err != nil {
			s.logf("robustset: server: closing store of %q: %v", d.Name(), err)
		}
	}
}

// Shutdown gracefully stops the server: it closes the listeners, waits
// for in-flight sessions to finish, then closes the dataset storage
// engines. If ctx expires first, the remaining sessions are aborted
// (their context is cancelled and their connections closed) and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.closeListeners()
	// Stop multiplexed connections from accepting new streams; their
	// in-flight sessions drain below like any other.
	s.cancelDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeStores()
		s.closeDebugListener()
		return nil
	case <-ctx.Done():
		s.cancelBase()
		s.closeConns()
		<-done
		s.closeStores()
		s.closeDebugListener()
		return ctx.Err()
	}
}

// Close immediately stops the server, aborting in-flight sessions and
// closing the dataset storage engines.
func (s *Server) Close() error {
	s.inShutdown.Store(true)
	s.closeListeners()
	s.cancelDrain()
	s.cancelBase()
	s.closeConns()
	s.wg.Wait()
	s.closeStores()
	s.closeDebugListener()
	return nil
}
