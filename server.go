package robustset

import (
	"context"
	"errors"
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"robustset/internal/points"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

// ErrServerClosed is returned by Server.Serve after Shutdown or Close.
var ErrServerClosed = errors.New("robustset: server closed")

// ErrUnknownDataset is relayed to clients that request a dataset the
// server does not publish.
var ErrUnknownDataset = errors.New("robustset: unknown dataset")

// Dataset is one named point multiset a Server publishes. It pairs the
// live points with an incrementally maintained sketch, so robust one-shot
// sessions are served from the Maintainer in O(sketch) time regardless of
// dataset size, while the other strategies snapshot the points. The
// multiset is stored as encoded-point occurrence counts, so Add and
// Remove cost O(levels) maintainer updates plus an O(1) map operation —
// no linear scans on high-churn datasets. All methods are safe for
// concurrent use with each other and with serving sessions.
type Dataset struct {
	name string

	mu         sync.Mutex
	maintainer *Maintainer
	counts     map[string]int // encoded point → multiplicity
	size       int
}

// Name returns the dataset's published name.
func (d *Dataset) Name() string { return d.name }

// Params returns the dataset's normalized reconciliation parameters —
// the ones the server dictates to fetching clients.
func (d *Dataset) Params() Params {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maintainer.Params()
}

// Size returns the current multiset size.
func (d *Dataset) Size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Add inserts one point into the dataset, updating the maintained sketch
// in O(levels) time.
func (d *Dataset) Add(pt Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.maintainer.Add(pt); err != nil {
		return err
	}
	d.counts[string(points.EncodeNew(pt))]++
	d.size++
	return nil
}

// Remove deletes one occurrence of pt from the dataset. It returns
// ErrNotPresent if the dataset does not hold the point.
func (d *Dataset) Remove(pt Point) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	enc := string(points.EncodeNew(pt))
	if d.counts[enc] == 0 {
		return fmt.Errorf("%w: %v not in dataset %q", ErrNotPresent, pt, d.name)
	}
	if err := d.maintainer.Remove(pt); err != nil {
		return err
	}
	if d.counts[enc]--; d.counts[enc] == 0 {
		delete(d.counts, enc)
	}
	d.size--
	return nil
}

// Snapshot returns a copy of the current points. Order is unspecified:
// the protocols treat inputs as multisets.
func (d *Dataset) Snapshot() []Point {
	d.mu.Lock()
	defer d.mu.Unlock()
	dim := d.maintainer.Params().Universe.Dim
	out := make([]Point, 0, d.size)
	for enc, c := range d.counts {
		p, err := points.Decode([]byte(enc), dim)
		if err != nil {
			// counts only ever holds EncodeNew output of validated points.
			panic("robustset: corrupt dataset encoding: " + err.Error())
		}
		out = append(out, p)
		for i := 1; i < c; i++ {
			out = append(out, p.Clone())
		}
	}
	return out
}

// sketchBlob marshals the maintained sketch under the dataset lock, so a
// session can serve a consistent snapshot without holding the lock for
// the network round-trip.
func (d *Dataset) sketchBlob() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.maintainer.Sketch().MarshalBinary()
}

// Server reconciles many named datasets with many concurrent clients.
// Each accepted connection is one session: the client opens with a
// handshake naming a dataset and a strategy (Session.Fetch with
// WithDataset does this), the server replies with the dataset's
// parameters, and the chosen protocol runs. Sessions run in their own
// goroutines; Shutdown stops accepting and drains them.
//
//	srv := robustset.NewServer()
//	srv.Publish("sensors/a", paramsA, ptsA)
//	srv.Publish("sensors/b", paramsB, ptsB)
//	go srv.Serve(ln)
//	...
//	srv.Shutdown(ctx)
type Server struct {
	logf           func(format string, args ...any)
	maxMsg         int
	sessionTimeout time.Duration

	mu         sync.Mutex
	datasets   map[string]*Dataset
	listeners  map[net.Listener]struct{}
	conns      map[net.Conn]struct{}
	inShutdown atomic.Bool
	wg         sync.WaitGroup

	// baseCtx is cancelled when sessions must abort (Close, or Shutdown
	// whose context expired).
	baseCtx    context.Context
	cancelBase context.CancelFunc
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerLogger directs per-session error reporting (a printf-style
// function, e.g. log.Printf). Default: discard.
func WithServerLogger(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithServerMaxMessageSize caps a single protocol message on every
// session, exactly like the Session option WithMaxMessageSize.
func WithServerMaxMessageSize(n int) ServerOption {
	return func(s *Server) { s.maxMsg = n }
}

// DefaultSessionTimeout bounds one server session (handshake through
// final message) unless overridden with WithServerSessionTimeout. It
// exists so a client that connects and goes silent cannot pin a session
// goroutine and connection forever.
const DefaultSessionTimeout = 2 * time.Minute

// WithServerSessionTimeout overrides the per-session deadline
// (DefaultSessionTimeout). d <= 0 disables the timeout entirely; only do
// that behind infrastructure that bounds connection lifetimes itself.
func WithServerSessionTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.sessionTimeout = d }
}

// NewServer builds an empty server; Publish datasets, then Serve.
func NewServer(opts ...ServerOption) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		logf:           func(string, ...any) {},
		sessionTimeout: DefaultSessionTimeout,
		datasets:       make(map[string]*Dataset),
		listeners:      make(map[net.Listener]struct{}),
		conns:          make(map[net.Conn]struct{}),
		baseCtx:        ctx,
		cancelBase:     cancel,
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Publish registers a named dataset and builds its maintained sketch.
// The points are copied. Publishing a name twice is an error.
func (s *Server) Publish(name string, p Params, pts []Point) (*Dataset, error) {
	if name == "" || len(name) > protocol.MaxDatasetName {
		return nil, fmt.Errorf("robustset: dataset name %q invalid (1..%d bytes)", name, protocol.MaxDatasetName)
	}
	m, err := NewMaintainer(p, pts)
	if err != nil {
		return nil, fmt.Errorf("robustset: publish %q: %w", name, err)
	}
	counts := make(map[string]int, len(pts))
	for _, pt := range pts {
		counts[string(points.EncodeNew(pt))]++
	}
	d := &Dataset{name: name, maintainer: m, counts: counts, size: len(pts)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[name]; dup {
		return nil, fmt.Errorf("robustset: dataset %q already published", name)
	}
	s.datasets[name] = d
	return d, nil
}

// Dataset returns a published dataset, or nil.
func (s *Server) Dataset(name string) *Dataset {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.datasets[name]
}

// Datasets returns the published dataset names in sorted order.
func (s *Server) Datasets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Serve accepts connections on ln and runs one session per connection
// until Shutdown or Close. It always returns a non-nil error; after a
// clean shutdown the error is ErrServerClosed. Serve may be called on
// multiple listeners concurrently.
func (s *Server) Serve(ln net.Listener) error {
	if !s.trackListener(ln) {
		ln.Close()
		return ErrServerClosed
	}
	defer s.untrackListener(ln)
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.inShutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		if !s.trackConn(conn) {
			conn.Close()
			return ErrServerClosed
		}
		go func() {
			defer s.untrackConn(conn)
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on the TCP address addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// handle runs one session: handshake, dispatch, protocol.
func (s *Server) handle(conn net.Conn) {
	ctx := s.baseCtx
	if s.sessionTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.sessionTimeout)
		defer cancel()
	}
	t := transport.NewConnLimit(conn, s.maxMsg)
	hello, err := protocol.RecvHello(ctx, t)
	if err != nil {
		s.logf("robustset: server: %v: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	d := s.Dataset(hello.Dataset)
	if d == nil {
		_ = protocol.RejectHello(ctx, t, fmt.Errorf("%w: %q", ErrUnknownDataset, hello.Dataset))
		s.logf("robustset: server: %v: unknown dataset %q", conn.RemoteAddr(), hello.Dataset)
		return
	}
	strat, err := strategyFromCode(hello.Strategy, hello.Config)
	if err != nil {
		_ = protocol.RejectHello(ctx, t, err)
		s.logf("robustset: server: %v: %v", conn.RemoteAddr(), err)
		return
	}
	params := d.Params()
	if err := protocol.SendAccept(ctx, t, params); err != nil {
		s.logf("robustset: server: %v: accept: %v", conn.RemoteAddr(), err)
		return
	}
	// Robust one-shot sessions serve the maintained sketch directly —
	// O(sketch size) per session instead of O(n·levels).
	if _, oneShot := strat.(Robust); oneShot {
		blob, err := d.sketchBlob()
		if err == nil {
			err = protocol.RunPushBlobAlice(ctx, t, blob)
		}
		if err != nil {
			s.logf("robustset: server: %v: dataset %q (%s): %v", conn.RemoteAddr(), d.Name(), strat.Name(), err)
		}
		return
	}
	if err := strat.serve(ctx, t, params, d.Snapshot()); err != nil {
		s.logf("robustset: server: %v: dataset %q (%s): %v", conn.RemoteAddr(), d.Name(), strat.Name(), err)
	}
}

func (s *Server) trackListener(ln net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	s.listeners[ln] = struct{}{}
	return true
}

func (s *Server) untrackListener(ln net.Listener) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.listeners, ln)
}

func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inShutdown.Load() {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// closeListeners stops accepting; safe to call repeatedly.
func (s *Server) closeListeners() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ln := range s.listeners {
		ln.Close()
	}
}

// closeConns force-closes every in-flight session connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

// Shutdown gracefully stops the server: it closes the listeners, then
// waits for in-flight sessions to finish. If ctx expires first, the
// remaining sessions are aborted (their context is cancelled and their
// connections closed) and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.closeListeners()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		s.closeConns()
		<-done
		return ctx.Err()
	}
}

// Close immediately stops the server, aborting in-flight sessions.
func (s *Server) Close() error {
	s.inShutdown.Store(true)
	s.closeListeners()
	s.cancelBase()
	s.closeConns()
	s.wg.Wait()
	return nil
}
