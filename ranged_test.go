package robustset_test

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustset"
	"robustset/internal/protocol"
	"robustset/internal/transport"
)

// TestRangedAgainstServer fetches a server dataset with the Ranged
// strategy and asserts (a) exact convergence and (b) that the range
// probe protocol — not the robust fallback — actually ran, by spotting
// the RANGE_FPS frames in the session trace.
func TestRangedAgainstServer(t *testing.T) {
	alice, bob := ratelessExactPair(500, 15)
	params := robustset.Params{Universe: testU, Seed: 11, DiffBudget: 15}

	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	var snap *robustset.SessionTrace
	sess, err := robustset.NewSession(robustset.Ranged{}, robustset.WithDataset("d"),
		robustset.WithSessionTrace(func(st *robustset.SessionTrace) { snap = st }))
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := sess.FetchAddr(context.Background(), addr.String(), bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(res.SPrime, alice) {
		t.Error("ranged fetch did not reproduce the dataset")
	}
	if stats.Total() == 0 {
		t.Error("no traffic accounted")
	}
	if snap == nil {
		t.Fatal("no session trace captured")
	}
	if snap.Strategy != "ranged" {
		t.Errorf("trace strategy %q, want ranged (did the client fall back?)", snap.Strategy)
	}
	var sawRangeFrames bool
	for _, f := range snap.Frames {
		if f.Type == "RANGE_FPS" {
			sawRangeFrames = true
		}
	}
	if !sawRangeFrames {
		t.Error("no RANGE_FPS frames on the wire; the server served another protocol")
	}
	if v, ok := snap.Stat("wall_rounds"); !ok || v < 1 {
		t.Errorf("wall_rounds stat = %d, %v", v, ok)
	}
	// The incrementally maintained server tree must track mutations: a
	// second fetch after a server-side batch converges to the new state.
	d := srv.Dataset("d")
	added := []robustset.Point{{7001, 13}, {7003, 17}}
	if err := d.AddBatch(added); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveBatch(alice[:3]); err != nil {
		t.Fatal(err)
	}
	res, _, err = sess.FetchAddr(context.Background(), addr.String(), res.SPrime)
	if err != nil {
		t.Fatal(err)
	}
	want := append(robustset.ClonePoints(alice[3:]), added...)
	if !robustset.EqualMultisets(res.SPrime, want) {
		t.Error("ranged fetch diverged from the mutated dataset")
	}
}

// TestRangedLegacyServerFallsBack is the cross-version test: a legacy
// peer — speaking the pre-ranged handshake (bare accept, no feature
// echo) and only the robust one-shot push on the Robust wire code — must
// be negotiated down cleanly by a Ranged client, with zero protocol
// errors on either side.
func TestRangedLegacyServerFallsBack(t *testing.T) {
	alice, bob := ratelessExactPair(300, 12)
	params := robustset.Params{Universe: testU, Seed: 19, DiffBudget: 12}

	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	ctx := context.Background()

	legacyDone := make(chan error, 1)
	go func() {
		// A faithful reproduction of the pre-ranged server session: parse
		// the hello (any config bytes on the Robust code are ignored),
		// send the bare accept, push the one-shot sketch.
		tr := transport.NewConn(c1)
		hello, err := protocol.RecvHello(ctx, tr)
		if err != nil {
			legacyDone <- err
			return
		}
		if hello.Strategy != protocol.StrategyRobust {
			t.Errorf("legacy server saw strategy code %d, want %d (ranged must ride the robust code)",
				hello.Strategy, protocol.StrategyRobust)
		}
		if len(hello.Config) < 2 || hello.Config[1]&protocol.FeatureRanged == 0 {
			t.Error("ranged hello does not advertise the feature bit in config byte 1")
		}
		if err := protocol.SendAccept(ctx, tr, params); err != nil {
			legacyDone <- err
			return
		}
		legacyDone <- protocol.RunPushAlice(ctx, tr, params, alice)
	}()

	var snap *robustset.SessionTrace
	sess, err := robustset.NewSession(robustset.Ranged{}, robustset.WithDataset("d"),
		robustset.WithSessionTrace(func(st *robustset.SessionTrace) { snap = st }))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sess.Fetch(ctx, c2, bob)
	if err != nil {
		t.Fatalf("fallback fetch failed: %v", err)
	}
	if err := <-legacyDone; err != nil {
		t.Fatalf("legacy server session failed: %v", err)
	}
	if res.Robust == nil {
		t.Error("fallback result carries no robust details; the client did not downgrade")
	}
	if snap.Strategy != "robust-oneshot" {
		t.Errorf("trace strategy %q, want the fallback's name", snap.Strategy)
	}
}

// TestRobustClientAgainstRangedServer: the reverse skew — a client that
// never heard of the feature gets the classic one-shot push from a new
// server, byte-compatible with the old handshake.
func TestRobustClientAgainstRangedServer(t *testing.T) {
	alice, bob := ratelessExactPair(300, 10)
	params := robustset.Params{Universe: testU, Seed: 23, DiffBudget: 10}

	srv := robustset.NewServer()
	defer srv.Close()
	if _, err := srv.Publish("d", params, alice); err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)

	sess, err := robustset.NewSession(robustset.Robust{}, robustset.WithDataset("d"))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sess.FetchAddr(context.Background(), addr.String(), bob)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robust == nil {
		t.Error("robust client did not get the one-shot push")
	}
}

// TestRangedHugeNWireBudget pins the headline regime of the strategy at
// full scale: one million points with a symmetric difference of ten must
// reconcile in at most half the wire bytes of the ExactIBLT path, whose
// strata estimator alone scales with nothing but still costs tens of
// kilobytes. Measured relative, so sketch-size tuning cannot silently
// break the comparison.
func TestRangedHugeNWireBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("million-point instance")
	}
	const n, replaced = 1_000_000, 5
	u := robustset.Universe{Dim: 2, Delta: 1 << 12}
	alice := make([]robustset.Point, n)
	for i := range alice {
		// A dense deterministic population; duplicates are fine (multiset).
		alice[i] = robustset.Point{int64(i*7919) % u.Delta, int64(i/4096) % u.Delta}
	}
	bob := robustset.ClonePoints(alice)
	for i := 0; i < replaced; i++ {
		bob[i*131071] = robustset.Point{int64(4000 + i), int64(i)}
	}
	params := robustset.Params{Universe: u, Seed: 47, DiffBudget: 16}

	run := func(strat robustset.Strategy) int64 {
		sess, err := robustset.NewSession(strat, robustset.WithParams(params))
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := net.Pipe()
		defer c1.Close()
		defer c2.Close()
		done := make(chan error, 1)
		go func() {
			_, err := sess.Serve(context.Background(), c1, alice)
			done <- err
		}()
		res, stats, err := sess.Fetch(context.Background(), c2, bob)
		if err != nil {
			t.Fatalf("%s fetch: %v", strat.Name(), err)
		}
		if err := <-done; err != nil {
			t.Fatalf("%s serve: %v", strat.Name(), err)
		}
		if !robustset.EqualMultisets(res.SPrime, alice) {
			t.Fatalf("%s did not converge", strat.Name())
		}
		return stats.Total()
	}
	rangedBytes := run(robustset.Ranged{})
	exactBytes := run(robustset.ExactIBLT{})
	if 2*rangedBytes > exactBytes {
		t.Errorf("ranged moved %d bytes, exact-IBLT %d: advantage below the contracted 2x at n=%d delta=%d",
			rangedBytes, exactBytes, n, 2*replaced)
	}
	t.Logf("n=%d delta=%d: ranged %dB, exact-IBLT %dB (%.2fx)",
		n, 2*replaced, rangedBytes, exactBytes, float64(exactBytes)/float64(rangedBytes))
}

// TestRangedMuxPipelined reconciles sibling subranges as parallel
// pipelined streams of one multiplexed connection — under the race
// detector this is also the interleaving test for the shared client
// tree and the lock-per-round server tree view — and asserts the
// pipelined wall-clock round depth beats a serial ranged run.
func TestRangedMuxPipelined(t *testing.T) {
	alice, bob := ratelessExactPair(4000, 48)
	params := robustset.Params{Universe: testU, Seed: 29, DiffBudget: 48}

	srv := robustset.NewServer(WithTestLogger(t))
	defer srv.Close()
	d, err := srv.Publish("d", params, alice)
	if err != nil {
		t.Fatal(err)
	}
	addr := startServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl, err := robustset.DialClient(ctx, addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if !cl.Muxed() {
		t.Fatal("no mux negotiated")
	}

	var mu sync.Mutex
	var last *robustset.SessionTrace
	sink := robustset.WithSessionTrace(func(st *robustset.SessionTrace) {
		mu.Lock()
		last = st
		mu.Unlock()
	})
	cs, err := cl.Session("d", robustset.Ranged{Streams: 4}, sink)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := cs.Fetch(ctx, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(res.SPrime, alice) {
		t.Error("pipelined ranged fetch diverged")
	}
	if stats.Total() == 0 {
		t.Error("no traffic accounted across streams")
	}
	if v, ok := last.Stat("streams"); !ok || v < 2 {
		t.Errorf("streams stat = %d (%v), want >= 2", v, ok)
	}
	pipelined, ok := last.Stat("wall_rounds")
	if !ok || pipelined < 1 {
		t.Fatalf("wall_rounds stat = %d (%v)", pipelined, ok)
	}

	// Serial comparator: one stream, one probe per round trip.
	serialSess, err := cl.Session("d", robustset.Ranged{Serial: true}, sink)
	if err != nil {
		t.Fatal(err)
	}
	sres, _, err := serialSess.Fetch(ctx, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(sres.SPrime, alice) {
		t.Error("serial ranged fetch diverged")
	}
	serial, ok := last.Stat("wall_rounds")
	if !ok {
		t.Fatal("serial run recorded no wall_rounds")
	}
	if pipelined >= serial {
		t.Errorf("pipelined wall rounds %d not below serial %d", pipelined, serial)
	}

	// Interleaving: concurrent pipelined fetches race against dataset
	// churn that nets to zero. Every fetch must succeed and return a
	// multiset between the churned states; the final quiescent fetch is
	// exact again. Run under -race this exercises the shared read-only
	// client tree and the per-round-locked server tree concurrently.
	churn := []robustset.Point{{8009, 21}, {8011, 23}, {8013, 27}}
	stop := make(chan struct{})
	var churned atomic.Int64
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := d.AddBatch(churn); err != nil {
				t.Error(err)
				return
			}
			if err := d.RemoveBatch(churn); err != nil {
				t.Error(err)
				return
			}
			churned.Add(1)
		}
	}()
	var fwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			res, _, err := cs.Fetch(ctx, bob)
			if err != nil {
				t.Errorf("churned fetch: %v", err)
				return
			}
			if n := len(res.SPrime); n < len(alice) || n > len(alice)+len(churn) {
				t.Errorf("churned fetch returned %d points, want within [%d,%d]",
					n, len(alice), len(alice)+len(churn))
			}
		}()
	}
	fwg.Wait()
	close(stop)
	cwg.Wait()
	if churned.Load() == 0 {
		t.Log("churn goroutine never completed a cycle; interleaving weak on this run")
	}
	final, _, err := cs.Fetch(ctx, bob)
	if err != nil {
		t.Fatal(err)
	}
	if !robustset.EqualMultisets(final.SPrime, alice) {
		t.Error("post-churn fetch did not converge to the quiescent dataset")
	}
}
