module robustset

go 1.23
