module robustset

go 1.24
