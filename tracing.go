package robustset

import (
	"io"
	"net/http"
	"time"

	"robustset/internal/trace"
)

// SessionTrace is the completed record of one traced reconciliation
// session: its phase spans (handshake, estimate, per-round table or cell
// exchanges, repair/apply) with durations and attributes, its accumulated
// stats (estimated vs. actual difference, rounds, decode retries), and a
// per-frame-type wire-byte attribution whose totals equal the session's
// transfer accounting. Server-side traces of multiplexed connections and
// replicator rounds nest their per-stream sessions as Children, so one
// round renders as one tree.
type SessionTrace = trace.Snapshot

// TraceLog retains completed session traces for inspection: a bounded
// ring of the most recent traces plus a second ring that captures slow or
// wire-expensive sessions even after many fast ones displaced them from
// the recent ring. A nil *TraceLog is a valid no-op sink — components
// accept one unconditionally and tracing costs nothing until a log is
// attached (WithServerTracing, WithReplicatorTracing).
type TraceLog struct {
	r *trace.Ring
}

// traceLogConfig collects the NewTraceLog options.
type traceLogConfig struct {
	capacity  int
	slowLat   time.Duration
	slowBytes int64
}

// TraceLogOption configures a TraceLog.
type TraceLogOption func(*traceLogConfig)

// WithTraceCapacity sets how many completed traces each ring retains.
// Default: 64.
func WithTraceCapacity(n int) TraceLogOption {
	return func(c *traceLogConfig) { c.capacity = n }
}

// WithSlowThreshold marks sessions at or above d as slow, capturing them
// in the slow ring. 0 disables latency-based capture. Default: 100ms.
func WithSlowThreshold(d time.Duration) TraceLogOption {
	return func(c *traceLogConfig) { c.slowLat = d }
}

// WithByteThreshold marks sessions that moved at least n wire bytes
// (both directions, children included) as expensive, capturing them in
// the slow ring. 0 disables byte-based capture. Default: 1 MiB.
func WithByteThreshold(n int64) TraceLogOption {
	return func(c *traceLogConfig) { c.slowBytes = n }
}

// NewTraceLog builds a trace log with the given capture policy.
func NewTraceLog(opts ...TraceLogOption) *TraceLog {
	cfg := traceLogConfig{capacity: 64, slowLat: 100 * time.Millisecond, slowBytes: 1 << 20}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &TraceLog{r: trace.NewRing(cfg.capacity, cfg.slowLat, cfg.slowBytes)}
}

// ring unwraps the log for internal plumbing; nil-safe.
func (t *TraceLog) ring() *trace.Ring {
	if t == nil {
		return nil
	}
	return t.r
}

// add records a completed trace; nil-safe on both sides.
func (t *TraceLog) add(s *SessionTrace) {
	if r := t.ring(); r != nil && s != nil {
		r.Add(s)
	}
}

// Recent returns the retained traces oldest-first.
func (t *TraceLog) Recent() []*SessionTrace {
	if r := t.ring(); r != nil {
		return r.Recent()
	}
	return nil
}

// Slow returns the traces captured by the slow/expensive policy,
// oldest-first.
func (t *TraceLog) Slow() []*SessionTrace {
	if r := t.ring(); r != nil {
		return r.Slow()
	}
	return nil
}

// WriteJSON renders the log as one JSON object with "recent" and "slow"
// arrays of trace trees.
func (t *TraceLog) WriteJSON(w io.Writer) error {
	if r := t.ring(); r != nil {
		return r.WriteJSON(w)
	}
	_, err := io.WriteString(w, `{"recent":[],"slow":[]}`+"\n")
	return err
}

// Handler returns an http.Handler serving the JSON document — the
// /debug/traces endpoint a server with WithServerTracing exposes on its
// metrics listener.
func (t *TraceLog) Handler() http.Handler {
	if r := t.ring(); r != nil {
		return r.Handler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = (*TraceLog)(nil).WriteJSON(w)
	})
}
