package robustset

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"robustset/internal/protocol"
	"robustset/internal/ranges"
	"robustset/internal/trace"
	"robustset/internal/transport"
)

// ErrClientClosed is returned for operations on a closed Client.
var ErrClientClosed = errors.New("robustset: client closed")

// Client amortizes one server connection over many reconciliation
// sessions. Dial once, then open sessions against any of the server's
// datasets; sessions run concurrently as pipelined streams of a single
// multiplexed (MUX1) connection, with a bounded number in flight — the
// cost-tracks-the-delta principle applied to transport: per-connection
// setup is paid once per peer, not once per dataset.
//
//	cl, _ := robustset.DialClient(ctx, addr)
//	defer cl.Close()
//	sess, _ := cl.Session("sensors/a", robustset.Robust{})
//	res, stats, err := sess.Fetch(ctx, localPts)
//
// Against a legacy (pre-mux) server the client downgrades transparently
// to one connection per session: the server closes the probing
// connection on the unknown mux hello, the client remembers, and every
// Fetch dials its own connection exactly like Session.FetchAddr. If the
// multiplexed connection dies mid-life the next Fetch redials and
// renegotiates once before reporting the failure.
//
// A Client is safe for concurrent use.
type Client struct {
	addr       string
	maxStreams int
	maxMsg     int
	window     int
	noMux      bool
	logf       func(format string, args ...any)

	sem chan struct{}

	mu       sync.Mutex
	mux      *transport.Mux
	legacy   bool
	closed   bool
	prev     TransferStats // accounting of connections already torn down
	redials  int64
	sessions int64
}

// ClientOption configures a Client.
type ClientOption func(*Client) error

// WithClientMaxStreams bounds the sessions concurrently in flight on
// the client (backpressure: the next Fetch blocks until a slot frees).
// Default: 16. Servers additionally bound streams per connection
// (WithServerMaxStreamsPerConn), so keep the client bound at or below
// the server's.
func WithClientMaxStreams(n int) ClientOption {
	return func(c *Client) error {
		if n < 1 {
			return fmt.Errorf("robustset: client max streams %d < 1", n)
		}
		c.maxStreams = n
		return nil
	}
}

// WithClientMaxMessageSize caps a single protocol message on every
// session, like the Session option WithMaxMessageSize.
func WithClientMaxMessageSize(n int) ClientOption {
	return func(c *Client) error {
		if n < 0 || n > transport.MaxFrameSize {
			return fmt.Errorf("robustset: max message size %d outside [0,%d]", n, transport.MaxFrameSize)
		}
		c.maxMsg = n
		return nil
	}
}

// WithClientWindow sets the per-stream receive window granted to the
// server. Default: transport.DefaultMuxWindow.
func WithClientWindow(n int) ClientOption {
	return func(c *Client) error {
		if n < 1 {
			return fmt.Errorf("robustset: client window %d < 1", n)
		}
		c.window = n
		return nil
	}
}

// WithClientNoMux forces connection-per-session mode without probing
// for mux support — for measurements and compatibility testing.
func WithClientNoMux() ClientOption {
	return func(c *Client) error {
		c.noMux = true
		return nil
	}
}

// WithClientLogger directs connection-lifecycle reporting (redials,
// downgrades). Default: discard.
func WithClientLogger(logf func(format string, args ...any)) ClientOption {
	return func(c *Client) error {
		c.logf = logf
		return nil
	}
}

// DialClient connects to a robustset Server and negotiates connection
// multiplexing. Dial failures are returned immediately; a reachable
// server that does not speak mux yields a working client in
// connection-per-session mode.
func DialClient(ctx context.Context, addr string, opts ...ClientOption) (*Client, error) {
	c := &Client{
		addr:       addr,
		maxStreams: 16,
		window:     transport.DefaultMuxWindow,
		logf:       func(string, ...any) {},
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	c.sem = make(chan struct{}, c.maxStreams)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// connectLocked dials and negotiates, entering legacy mode on a
// mux-refusing peer. Caller holds c.mu.
func (c *Client) connectLocked(ctx context.Context) error {
	if c.noMux {
		c.legacy = true
		return nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return err
	}
	// Mux-sized frame limit: a maximal legal protocol message must fit
	// in one mux frame, header included.
	t := transport.NewMuxConnLimit(conn, c.maxMsg)
	serverWindow, err := protocol.RunMuxHelloClient(ctx, t, uint32(c.window))
	if err != nil {
		// The probe connection is dead either way; close it before
		// deciding between downgrade and failure.
		conn.Close()
		if errors.Is(err, protocol.ErrMuxUnsupported) {
			c.logf("robustset: client: %s: legacy server, downgrading to connection-per-session", c.addr)
			c.legacy = true
			return nil
		}
		return err
	}
	c.mux = transport.NewMux(t, true, transport.MuxConfig{
		RecvWindow: c.window,
		SendWindow: int(serverWindow),
	})
	return nil
}

// ensure returns a live mux, or legacy=true, redialing a dead mux once
// per call.
func (c *Client) ensure(ctx context.Context) (m *transport.Mux, legacy bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, ErrClientClosed
	}
	if c.legacy {
		return nil, true, nil
	}
	if c.mux != nil && c.mux.Err() == nil {
		return c.mux, false, nil
	}
	if c.mux != nil {
		st := c.mux.Stats()
		c.prev.BytesSent += st.BytesSent
		c.prev.BytesRecv += st.BytesRecv
		c.prev.MsgsSent += st.MsgsSent
		c.prev.MsgsRecv += st.MsgsRecv
		c.mux.Close()
		c.mux = nil
		c.redials++
		c.logf("robustset: client: %s: connection lost, redialing", c.addr)
	}
	if err := c.connectLocked(ctx); err != nil {
		return nil, false, err
	}
	return c.mux, c.legacy, nil
}

// Muxed reports whether the client currently holds a live multiplexed
// connection (false in legacy connection-per-session mode).
func (c *Client) Muxed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux != nil && c.mux.Err() == nil
}

// Addr returns the server address the client dials.
func (c *Client) Addr() string { return c.addr }

// Stats returns the client's connection-level accounting across every
// connection it has held — mux framing included, legacy per-session
// connections excluded (those are returned per Fetch).
func (c *Client) Stats() TransferStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.prev
	if c.mux != nil {
		st := c.mux.Stats()
		out.BytesSent += st.BytesSent
		out.BytesRecv += st.BytesRecv
		out.MsgsSent += st.MsgsSent
		out.MsgsRecv += st.MsgsRecv
	}
	return out
}

// Sessions returns the lifetime count of sessions the client ran.
func (c *Client) Sessions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions
}

// Close tears down the connection; in-flight sessions fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.mux != nil {
		c.mux.Close()
		c.mux = nil
	}
	return nil
}

// ClientSession binds one (dataset, strategy) pair to the client; its
// Fetch may be called repeatedly and concurrently, each call one
// pipelined session.
type ClientSession struct {
	c    *Client
	sess *Session
}

// Session builds a session against a named server dataset. Options are
// the Session options (WithMetric, WithStatsSink, ...); the dataset and
// the client's message cap are applied for you.
func (c *Client) Session(dataset string, strategy Strategy, opts ...Option) (*ClientSession, error) {
	all := append(append([]Option{}, opts...),
		WithDataset(dataset), WithMaxMessageSize(c.maxMsg))
	sess, err := NewSession(strategy, all...)
	if err != nil {
		return nil, err
	}
	return &ClientSession{c: c, sess: sess}, nil
}

// Fetch reconciles local against the session's dataset and returns the
// result plus this session's wire accounting (its stream's share of the
// multiplexed connection, or the whole connection in legacy mode).
// Concurrent Fetches beyond the client's stream bound block — that is
// the backpressure, not an error.
func (cs *ClientSession) Fetch(ctx context.Context, local []Point) (*SyncResult, TransferStats, error) {
	c := cs.c
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, TransferStats{}, ctx.Err()
	}
	defer func() { <-c.sem }()
	c.mu.Lock()
	c.sessions++
	c.mu.Unlock()

	for attempt := 0; ; attempt++ {
		m, legacy, err := c.ensure(ctx)
		if err != nil {
			return nil, TransferStats{}, err
		}
		if legacy {
			return cs.sess.FetchAddr(ctx, c.addr, local)
		}
		if r, ok := cs.sess.strategy.(Ranged); ok && r.Streams > 1 {
			res, stats, ferr, opened := cs.sess.fetchRangedStreams(ctx, m, r, local)
			if !opened {
				// The mux died before any stream opened; redial once.
				if attempt == 0 && ctx.Err() == nil {
					continue
				}
			}
			return res, stats, ferr
		}
		st, err := m.Open(ctx)
		if err != nil {
			// A dead mux surfaces here; redial and retry exactly once.
			if attempt == 0 && ctx.Err() == nil {
				continue
			}
			return nil, TransferStats{}, err
		}
		res, ferr := cs.sess.fetchOver(ctx, st, local)
		stats := st.Stats()
		if ferr != nil {
			// Tear this stream down on both ends without disturbing its
			// siblings; the server's session aborts promptly instead of
			// waiting out its timeout.
			st.Reset(ferr)
			return nil, stats, ferr
		}
		_ = st.Close()
		return res, stats, nil
	}
}

// fetchRangedStreams runs one ranged fetch as up to r.Streams parallel
// pipelined streams of the multiplexed connection, each reconciling a
// disjoint subrange of the key space against its own server session.
// The partition comes from the local tree — no extra round trip — and
// every stream performs its own handshake, so to the server this is
// simply r.Streams concurrent ranged sessions. Wall-clock round depth
// is the maximum over streams (recorded as the wall_rounds trace stat)
// instead of the sum a serial walk would pay. opened=false means the
// mux died before the first stream existed, so the caller may redial.
func (s *Session) fetchRangedStreams(ctx context.Context, m *transport.Mux, r Ranged, local []Point) (res *SyncResult, st TransferStats, err error, opened bool) {
	var tr *trace.Trace
	if s.traceSink != nil {
		tr = trace.New("client")
		tr.Label(s.dataset, r.Name(), "")
		ctx = trace.NewContext(ctx, tr)
		defer func() {
			tr.Finish(err)
			s.traceSink(tr.Snapshot())
		}()
	} else {
		tr = trace.FromContext(ctx)
	}
	hello := protocol.Hello{Strategy: r.code(), Dataset: s.dataset, Config: r.helloConfig()}
	st0, err := m.Open(ctx)
	if err != nil {
		return nil, st, err, false
	}
	fail := func(stream *transport.Stream, ferr error) (*SyncResult, TransferStats, error, bool) {
		stats := stream.Stats()
		stream.Reset(ferr)
		return nil, stats, ferr, true
	}
	hsp := tr.Begin("hello")
	p, feats, err := protocol.RunHelloClientExt(ctx, st0, hello)
	if err != nil {
		hsp.End()
		return fail(st0, err)
	}
	hsp.End(trace.I("features", int64(feats)))
	if feats&protocol.FeatureRanged == 0 {
		// Legacy server: no ranged feature echoed, so finish as a plain
		// single-stream fetch of the fallback strategy on the stream the
		// handshake already opened.
		strat := r.fallback()
		tr.Label("", strat.Name(), "")
		res, err = strat.fetch(ctx, st0, p, local)
		if err != nil {
			return fail(st0, err)
		}
		st = st0.Stats()
		_ = st0.Close()
		res.Params = p
		res.metric = s.metric
		return res, st, nil, true
	}
	if err = p.Universe.CheckSet(local); err != nil {
		return fail(st0, err)
	}
	cfg := r.config(p)
	build := tr.Begin("range_tree_build")
	tree, err := protocol.BuildRangeTree(cfg, local)
	if err != nil {
		build.End()
		return fail(st0, err)
	}
	build.End(trace.I("keys", int64(tree.Len())))
	// Partition the key space at the local tree's equal-count ranks. A
	// sparse tree may yield fewer cuts than requested; every scope is
	// non-empty locally and together they cover the whole space.
	bounds := append(tree.PartitionBounds(r.Streams), ranges.TopBound(tree.KeyLen()))
	type scope struct{ lo, hi []byte }
	scopes := make([]scope, 0, len(bounds))
	lo := []byte(nil)
	for _, b := range bounds {
		scopes = append(scopes, scope{lo, b})
		lo = b
	}

	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu         sync.Mutex
		adds, rems [][]byte
		wallRounds int
		firstErr   error
	)
	var wg sync.WaitGroup
	for i, sc := range scopes {
		wg.Add(1)
		go func(i int, sc scope) {
			defer wg.Done()
			stream := st0
			if i > 0 {
				s2, oerr := m.Open(gctx)
				if oerr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = oerr
					}
					mu.Unlock()
					cancel()
					return
				}
				_, f2, herr := protocol.RunHelloClientExt(gctx, s2, hello)
				if herr == nil && f2&protocol.FeatureRanged == 0 {
					herr = errors.New("robustset: server dropped the ranged feature on a sibling stream")
				}
				if herr != nil {
					stats := s2.Stats()
					s2.Reset(herr)
					mu.Lock()
					st.Add(stats)
					if firstErr == nil {
						firstErr = herr
					}
					mu.Unlock()
					cancel()
					return
				}
				stream = s2
			}
			add, rem, rounds, serr := protocol.RunRangedBobScoped(gctx, stream, cfg, tree, sc.lo, sc.hi)
			stats := stream.Stats()
			if serr != nil {
				stream.Reset(serr)
			} else {
				_ = stream.Close()
			}
			mu.Lock()
			defer mu.Unlock()
			st.Add(stats)
			if serr != nil {
				if firstErr == nil {
					firstErr = serr
				}
				cancel()
				return
			}
			adds = append(adds, add...)
			rems = append(rems, rem...)
			if rounds > wallRounds {
				wallRounds = rounds
			}
		}(i, sc)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, st, firstErr, true
	}
	ap := tr.Begin("apply")
	sp, err := protocol.ApplyRangedDiff(cfg.Universe, local, adds, rems)
	if err != nil {
		ap.End()
		return nil, st, err, true
	}
	ap.End(trace.I("added", int64(len(adds))), trace.I("removed", int64(len(rems))))
	tr.Stat("actual_diff", int64(len(adds)+len(rems)))
	tr.Stat("wall_rounds", int64(wallRounds))
	tr.Stat("streams", int64(len(scopes)))
	res = &SyncResult{SPrime: sp, Params: p}
	res.metric = s.metric
	return res, st, nil, true
}
