// Package robustset implements robust set reconciliation (Chen, Konrad,
// Yi, Yu, Zhang — SIGMOD 2014): one-way synchronization of point
// multisets that treats close points as equal.
//
// Two parties, Alice and Bob, each hold n points in a discretized metric
// space [Δ]^d. Most of Alice's points are noisy copies of Bob's (sensor
// noise, float rounding, lossy compression); at most k are genuinely new.
// Classic set reconciliation counts every noisy pair as two differences
// and therefore costs Θ(n); this package lets Bob compute a multiset S'_B
// whose Earth Mover's Distance to Alice's data is within an O(d) factor
// of the unavoidable optimum EMD_k, at a communication cost proportional
// to k — independent of n.
//
// The construction combines a randomly shifted hierarchical grid (a
// randomly offset quadtree) with Invertible Bloom Lookup Tables: for each
// grid resolution Alice sends an O(k)-cell IBLT of her points rounded to
// grid cells; Bob subtracts his own and repairs his multiset at the
// finest resolution that decodes. See DESIGN.md for the full architecture
// and internal/core for the protocol implementation.
//
// # Quick start
//
//	u := robustset.Universe{Dim: 2, Delta: 1 << 20}
//	params := robustset.Params{Universe: u, Seed: 42, DiffBudget: 16}
//
//	sketch, err := robustset.NewSketch(params, alicePoints) // Alice
//	blob, err := sketch.MarshalBinary()                     // → network
//
//	var sk robustset.Sketch                                 // Bob
//	err = sk.UnmarshalBinary(blob)
//	res, err := robustset.Reconcile(&sk, bobPoints)
//	// res.SPrime ≈ alicePoints in Earth Mover's Distance.
//
// For connection-oriented use, build a Session: a Strategy value picks
// the wire protocol — Robust (one-shot), Adaptive (estimate-first,
// multi-round), the classic exact schemes the paper benchmarks against,
// ExactIBLT (difference digest), CPI (characteristic-polynomial sync)
// and Naive (full transfer), or Rateless (extendable-IBLT cell
// streaming: exact sync whose wire cost tracks the actual difference
// even when the difference estimate is wrong) — and Session.Serve /
// Session.Fetch run it over any net.Conn with context cancellation and
// deadlines:
//
//	sess, _ := robustset.NewSession(robustset.Robust{}, robustset.WithParams(params))
//	res, stats, err := sess.Fetch(ctx, conn, bobPoints)
//
// A Server multiplexes many named datasets over concurrent connections,
// each backed by an incrementally maintained sketch (Maintainer):
//
//	srv := robustset.NewServer()
//	srv.Publish("telemetry", params, pts)
//	go srv.Serve(ln)
//
// and clients select a dataset with WithDataset("telemetry"), adopting
// the server's parameters automatically. Datasets can be sharded
// (Server.PublishSharded) and retired at runtime (Server.Unpublish).
//
// A Replicator turns N such servers into an anti-entropy cluster: each
// node continuously reconciles every shared dataset shard with a
// rotating selection of peers and applies the diffs locally, converging
// the nodes to the identical multiset at a per-round cost that tracks
// the live delta per shard — see NewReplicator and DESIGN.md's
// "Replication & sharding".
//
// The legacy free functions
// (Push/Pull, PushAdaptive/PullAdaptive, PushExact/PullExact,
// PushCPI/PullCPI, SyncTwoWay) remain as deprecated wrappers that
// delegate to the equivalent Session.
//
// # Performance
//
// Sketch construction is the hot path of a serving deployment and is
// engineered accordingly: points are presorted once in Morton (Z-order)
// so per-level occurrence indexing is a run scan instead of a hash-map
// lookup per point per level; IBLT inserts derive all bucket indices and
// the checksum from a single keyed digest and perform no allocations;
// and the levels of the multiresolution sketch are built in parallel
// across a bounded worker pool (NewSketch uses GOMAXPROCS workers —
// byte-identical output at every worker count). On one 2.1 GHz core,
// building the default sketch over 100k 2-d points takes ~150 ms, about
// 3× faster than the naive build, and scales further with cores.
// Reconciliation inherits the same machinery for Bob's local build.
//
// cmd/bench runs a fixed workload matrix over all six strategies and
// writes BENCH_core.json — the repository's recorded performance
// trajectory; see DESIGN.md for the harness and the hot-path
// architecture.
package robustset

import (
	"fmt"

	"robustset/internal/core"
	"robustset/internal/emd"
	"robustset/internal/grid"
	"robustset/internal/points"
)

// Point is a point of the universe: one int64 coordinate per dimension.
type Point = points.Point

// Universe is the discretized domain [Δ]^d. Delta must be a power of two.
type Universe = points.Universe

// Metric measures distances between points.
type Metric = points.Metric

// Ground metrics.
var (
	// L1 is the Manhattan metric (the paper's primary metric).
	L1 = points.L1
	// L2 is the Euclidean metric.
	L2 = points.L2
	// LInf is the Chebyshev metric.
	LInf = points.LInf
)

// Quantizer maps real-valued records into a Universe and back; see
// NewQuantizer for the ingestion workflow.
type Quantizer = points.Quantizer

// NewQuantizer builds the affine float→grid quantizer that turns real
// data (database rows, sensor readings) into reconcilable points: each
// coordinate's [min, max] range is mapped onto [0, Δ). A roundtrip moves
// a value by at most half a quantization step, which simply adds to the
// noise floor the protocol absorbs.
func NewQuantizer(u Universe, min, max []float64) (*Quantizer, error) {
	return points.NewQuantizer(u, min, max)
}

// Params configures a reconciliation; both parties must agree on it
// (sketches carry their Params on the wire, so in practice Bob adopts
// Alice's).
type Params = core.Params

// Sketch is Alice's transmissible summary: one IBLT per grid level.
type Sketch = core.Sketch

// Result is Bob's reconciliation outcome.
type Result = core.Result

// LevelOutcome records one level's decode attempt inside a Result.
type LevelOutcome = core.LevelOutcome

// Errors surfaced by Reconcile. See the core package for details.
var (
	// ErrNoDecodableLevel means the difference exceeded the sketch's
	// budget at every resolution; retry with a larger DiffBudget.
	ErrNoDecodableLevel = core.ErrNoDecodableLevel
	// ErrInconsistentSketch means a decoded difference contradicted the
	// local set — corruption or mismatched parameters.
	ErrInconsistentSketch = core.ErrInconsistentSketch
)

// NewSketch summarizes pts under p (Alice's side of the one-shot
// protocol). The sketch costs O(DiffBudget · levels) cells on the wire.
func NewSketch(p Params, pts []Point) (*Sketch, error) {
	return core.BuildSketch(p, pts)
}

// Maintainer keeps a sketch synchronized with a changing multiset:
// Add/Remove cost O(levels) instead of an O(n·levels) rebuild. See
// NewMaintainer.
type Maintainer = core.Maintainer

// ErrNotPresent is returned by Maintainer.Remove for points that cannot
// be in the maintained multiset.
var ErrNotPresent = core.ErrNotPresent

// NewMaintainer builds the sketch for the initial multiset together with
// the occupancy state needed for incremental Add/Remove updates. A sync
// server ingesting an update stream keeps one Maintainer per dataset and
// serves Maintainer.Sketch() on demand; the maintained sketch is always
// bitwise identical to a fresh NewSketch of the current multiset.
func NewMaintainer(p Params, pts []Point) (*Maintainer, error) {
	return core.NewMaintainer(p, pts)
}

// Reconcile computes S'_B from Alice's sketch and Bob's points (Bob's
// side of the one-shot protocol).
func Reconcile(s *Sketch, local []Point) (*Result, error) {
	return core.Reconcile(s, local)
}

// ReconcileTwoWay runs the one-way protocol once in each direction and
// returns both parties' updated multisets. As the paper notes, two-way
// robust reconciliation does not make the sets equal — each party ends
// close to the other's original data.
func ReconcileTwoWay(p Params, alice, bob []Point) (alicePrime, bobPrime []Point, err error) {
	// Validate both inputs up front so a bad point is attributed to the
	// party holding it, instead of surfacing as a bare core error midway
	// through the exchange.
	if err := p.Universe.CheckSet(alice); err != nil {
		return nil, nil, fmt.Errorf("robustset: two-way: alice's set: %w", err)
	}
	if err := p.Universe.CheckSet(bob); err != nil {
		return nil, nil, fmt.Errorf("robustset: two-way: bob's set: %w", err)
	}
	skA, err := core.BuildSketch(p, alice)
	if err != nil {
		return nil, nil, err
	}
	skB, err := core.BuildSketch(p, bob)
	if err != nil {
		return nil, nil, err
	}
	resB, err := core.Reconcile(skA, bob)
	if err != nil {
		return nil, nil, err
	}
	resA, err := core.Reconcile(skB, alice)
	if err != nil {
		return nil, nil, err
	}
	return resA.SPrime, resB.SPrime, nil
}

// EMD returns the exact Earth Mover's Distance between two equal-sized
// multisets under m — the objective robust reconciliation optimizes. It
// solves an assignment problem in O(n³); use EMDApprox for large n.
func EMD(x, y []Point, m Metric) (float64, error) {
	return emd.Exact(x, y, m)
}

// EMDk returns EMD_k: the minimum EMD after excluding k points from each
// side — the baseline the protocol's accuracy is measured against.
func EMDk(x, y []Point, m Metric, k int) (float64, error) {
	return emd.Partial(x, y, m, k)
}

// EMDApprox estimates the ℓ1 Earth Mover's Distance in O(n·logΔ) time
// via a randomly shifted grid embedding (O(d·logΔ) expected distortion).
func EMDApprox(x, y []Point, u Universe, seed uint64) (float64, error) {
	g, err := grid.New(u, seed)
	if err != nil {
		return 0, err
	}
	return emd.GridApprox(x, y, g)
}
