package robustset_test

import (
	"fmt"

	"robustset"
)

// Example shows the minimal one-shot reconciliation flow: Alice sketches,
// Bob reconciles, and with zero value noise the result is exact.
func Example() {
	u := robustset.Universe{Dim: 2, Delta: 1 << 10}
	params := robustset.Params{Universe: u, Seed: 42, DiffBudget: 2}

	bob := []robustset.Point{{10, 10}, {500, 900}, {77, 4}}
	alice := []robustset.Point{{10, 10}, {500, 900}, {123, 456}} // one replaced point

	sketch, err := robustset.NewSketch(params, alice)
	if err != nil {
		panic(err)
	}
	blob, _ := sketch.MarshalBinary() // what actually crosses the network

	var wire robustset.Sketch
	if err := wire.UnmarshalBinary(blob); err != nil {
		panic(err)
	}
	res, err := robustset.Reconcile(&wire, bob)
	if err != nil {
		panic(err)
	}
	fmt.Println("added:  ", res.Added)
	fmt.Println("removed:", res.Removed)
	fmt.Println("exact:  ", robustset.EqualMultisets(res.SPrime, alice))
	// Output:
	// added:   [(123,456)]
	// removed: [(77,4)]
	// exact:   true
}

// ExampleEMDk shows how the accuracy floor is computed: the EMD after
// excluding the k genuinely-different points from each side.
func ExampleEMDk() {
	x := []robustset.Point{{0}, {10}, {1000}}
	y := []robustset.Point{{1}, {11}, {5}}
	full, _ := robustset.EMD(x, y, robustset.L1)
	floor, _ := robustset.EMDk(x, y, robustset.L1, 1)
	fmt.Printf("EMD=%.0f EMD_1=%.0f\n", full, floor)
	// Output: EMD=995 EMD_1=2
}

// ExampleNewMaintainer shows incremental sketch maintenance: updates cost
// O(levels) and the sketch stays identical to a full rebuild.
func ExampleNewMaintainer() {
	u := robustset.Universe{Dim: 1, Delta: 1 << 8}
	params := robustset.Params{Universe: u, Seed: 7, DiffBudget: 2}
	m, err := robustset.NewMaintainer(params, []robustset.Point{{5}, {9}})
	if err != nil {
		panic(err)
	}
	_ = m.Add(robustset.Point{100})
	_ = m.Remove(robustset.Point{5})
	fresh, _ := robustset.NewSketch(params, []robustset.Point{{9}, {100}})
	a, _ := m.Sketch().MarshalBinary()
	b, _ := fresh.MarshalBinary()
	fmt.Println("count:", m.Count(), "identical to rebuild:", string(a) == string(b))
	// Output: count: 2 identical to rebuild: true
}
